"""Substitutions and homomorphisms over terms and atoms.

A :class:`Substitution` maps variables to terms.  Applying a substitution to
a term, an atom, a tuple of terms, or an iterable of atoms replaces every
occurrence of a variable in its domain with the corresponding image and
leaves everything else untouched — exactly the ``σ(α)`` operation of the
paper.  Homomorphisms between sets of atoms (and containment mappings
between queries) are substitutions with extra conditions, implemented in
:mod:`repro.evaluation.homomorphisms`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import SubstitutionError, UnificationError
from repro.relational.atoms import Atom
from repro.relational.terms import (
    CanonicalConstant,
    Term,
    Variable,
    canonical,
    is_constant_like,
    is_term,
)

__all__ = ["Substitution", "unify_tuples", "canonical_substitution"]


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping from variables to terms.

    The paper writes ``σ = {x1 ↦ c1; ...; xn ↦ cn}``.  Targets may be any
    term (constants, canonical constants or variables); identity bindings
    ``x ↦ x`` are dropped at construction time so that the *domain* of the
    substitution is exactly the set of variables it actually moves or binds.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Variable, Term] | Iterable[tuple[Variable, Term]] = ()) -> None:
        items = dict(mapping)
        cleaned: dict[Variable, Term] = {}
        for source, target in items.items():
            if not isinstance(source, Variable):
                raise SubstitutionError(f"substitution domain must contain variables, got {source!r}")
            if not is_term(target):
                raise SubstitutionError(f"substitution image must be a term, got {target!r}")
            if source == target:
                continue
            cleaned[source] = target
        self._mapping: dict[Variable, Term] = cleaned

    @classmethod
    def _trusted(cls, mapping: dict[Variable, Term]) -> "Substitution":
        """Wrap a mapping the caller guarantees is already clean.

        Internal fast path for the engine executors, which build thousands
        of substitutions per enumeration from bindings that are Variables
        and Terms by construction, with identity bindings already dropped.
        The dict is adopted, not copied — the caller must hand ownership
        over.
        """
        substitution = cls.__new__(cls)
        substitution._mapping = mapping
        return substitution

    # ------------------------------------------------------------------ #
    # Mapping protocol
    # ------------------------------------------------------------------ #
    def __getitem__(self, key: Variable) -> Term:
        return self._mapping[key]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._mapping == other._mapping
        return NotImplemented

    def __repr__(self) -> str:
        inner = "; ".join(f"{src} -> {dst}" for src, dst in sorted(self._mapping.items()))
        return f"Substitution({{{inner}}})"

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #
    def apply_term(self, term: Term) -> Term:
        """Image of a single term (non-variables and unbound variables are fixed)."""
        if isinstance(term, Variable):
            return self._mapping.get(term, term)
        return term

    def apply_tuple(self, terms: Iterable[Term]) -> tuple[Term, ...]:
        """Image of a tuple of terms, component-wise."""
        return tuple(self.apply_term(term) for term in terms)

    def apply_atom(self, atom: Atom) -> Atom:
        """Image of an atom: ``σ(R(t1,...,tn)) = R(σ(t1),...,σ(tn))``."""
        return Atom(atom.relation, self.apply_tuple(atom.terms))

    def apply_atoms(self, atoms: Iterable[Atom]) -> tuple[Atom, ...]:
        """Image of an iterable of atoms, in order (duplicates may appear)."""
        return tuple(self.apply_atom(atom) for atom in atoms)

    def __call__(self, obj):
        """Polymorphic application to a term, atom, or iterable of either."""
        if isinstance(obj, Atom):
            return self.apply_atom(obj)
        if is_term(obj):
            return self.apply_term(obj)  # type: ignore[arg-type]
        if isinstance(obj, (tuple, list, frozenset, set)):
            converted = [self(item) for item in obj]
            if isinstance(obj, tuple):
                return tuple(converted)
            if isinstance(obj, list):
                return converted
            return frozenset(converted)
        raise SubstitutionError(f"cannot apply a substitution to {obj!r}")

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def compose(self, other: "Substitution") -> "Substitution":
        """The composition ``other ∘ self``: first ``self``, then ``other``.

        ``(self.compose(other))(x) == other(self(x))`` for every term ``x``.
        """
        combined: dict[Variable, Term] = {}
        for source, target in self._mapping.items():
            combined[source] = other.apply_term(target)
        for source, target in other._mapping.items():
            combined.setdefault(source, target)
        return Substitution(combined)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Restriction of the substitution to a set of variables."""
        wanted = set(variables)
        return Substitution({v: t for v, t in self._mapping.items() if v in wanted})

    def extend(self, variable: Variable, target: Term) -> "Substitution":
        """Return a new substitution with one extra binding.

        Raises :class:`SubstitutionError` if *variable* is already bound to a
        different target.
        """
        current = self._mapping.get(variable)
        if current is not None and current != target:
            raise SubstitutionError(
                f"conflicting bindings for {variable}: {current} vs {target}"
            )
        if current == target or variable == target:
            return self
        extended = dict(self._mapping)
        extended[variable] = target
        return Substitution(extended)

    def merge(self, other: "Substitution") -> "Substitution":
        """Union of two substitutions; raises on conflicting bindings."""
        merged = dict(self._mapping)
        for source, target in other._mapping.items():
            existing = merged.get(source)
            if existing is not None and existing != target:
                raise SubstitutionError(
                    f"conflicting bindings for {source}: {existing} vs {target}"
                )
            merged[source] = target
        return Substitution(merged)

    def is_ground_on(self, variables: Iterable[Variable]) -> bool:
        """``True`` when every variable in *variables* maps to a constant."""
        return all(is_constant_like(self.apply_term(variable)) for variable in variables)

    @property
    def domain(self) -> frozenset[Variable]:
        """Set of variables moved by the substitution."""
        return frozenset(self._mapping)

    @property
    def image(self) -> frozenset[Term]:
        """Set of terms in the range of the substitution."""
        return frozenset(self._mapping.values())

    @classmethod
    def identity(cls) -> "Substitution":
        """The empty (identity) substitution."""
        return cls()


def unify_tuples(pattern: Iterable[Term], target: Iterable[Term]) -> Substitution:
    """Unify a tuple of terms *pattern* with a tuple of terms *target*.

    The result is the substitution ``σ`` on the variables of *pattern* such
    that ``σ(pattern) == target``, mirroring the paper's notion of a tuple of
    free variables being *unifiable* with a tuple of constants.  Constants in
    the pattern must match the target exactly; repeated variables must be
    mapped consistently.  Raises :class:`UnificationError` otherwise.
    """
    pattern = tuple(pattern)
    target = tuple(target)
    if len(pattern) != len(target):
        raise UnificationError(
            f"cannot unify tuples of different lengths {len(pattern)} and {len(target)}"
        )
    bindings: dict[Variable, Term] = {}
    for source, destination in zip(pattern, target):
        if isinstance(source, Variable):
            existing = bindings.get(source)
            if existing is not None and existing != destination:
                raise UnificationError(
                    f"variable {source} would need to map to both {existing} and {destination}"
                )
            bindings[source] = destination
        elif source != destination:
            raise UnificationError(f"constant {source} does not match {destination}")
    return Substitution(bindings)


def canonical_substitution(variables: Iterable[Variable]) -> Substitution:
    """The substitution freezing each variable ``x`` to its canonical ``x̂``.

    Applying it to the body of a query yields the canonical instance of the
    query (the ``I_q`` of the paper).
    """
    return Substitution({variable: canonical(variable) for variable in variables})
