"""Terms of the relational language: variables and constants.

The paper distinguishes three kinds of terms:

* *variables* (``x``, ``y1`` ...), drawn from a countably infinite set ``X``;
* *language constants* (``c1``, ``'a'`` ...), the ordinary constants that may
  appear in queries and database instances;
* *canonical constants* (written ``x̂`` in the paper), a set of constants
  disjoint from the language constants that is in bijection with the
  variables.  Canonical constants are used to "freeze" the variables of a
  query when building its canonical instance and its probe tuples.

All three are immutable, hashable value objects so they can be used freely as
dictionary keys and members of frozensets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.exceptions import InvalidTermError

__all__ = [
    "Variable",
    "Constant",
    "CanonicalConstant",
    "Term",
    "is_term",
    "is_constant_like",
    "canonical",
    "decanonical",
    "make_variables",
    "make_constants",
    "term_sort_key",
]


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable.

    Variables are identified purely by their name: two ``Variable`` objects
    with the same name are equal and interchangeable.
    """

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise InvalidTermError(f"variable name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "_hash", hash((Variable, self.name)))

    # Terms are the keys of every hot dictionary in the engine; the
    # generated dataclass __hash__/__eq__ rebuild a field tuple per call,
    # which dominates profile time at scale.  The hash is computed once at
    # construction (and excluded from pickles: it embeds the per-process
    # class identity, so a worker recomputes it on first use instead).
    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:  # unpickled instance: state omits the cache
            value = hash((Variable, self.name))
            object.__setattr__(self, "_hash", value)
            return value

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Variable:
            return self.name == other.name  # type: ignore[union-attr]
        return NotImplemented

    def __getstate__(self) -> dict:
        return {"name": self.name}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, order=True)
class Constant:
    """A language constant.

    Constants carry an arbitrary hashable ``value`` (typically a string or an
    integer).  Two constants are equal exactly when their values are equal.
    """

    value: object

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "_hash", hash((Constant, self.value)))
        except TypeError as exc:  # pragma: no cover - defensive
            raise InvalidTermError(f"constant value must be hashable, got {self.value!r}") from exc

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:  # unpickled instance: state omits the cache
            value = hash((Constant, self.value))
            object.__setattr__(self, "_hash", value)
            return value

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Constant:
            return self.value == other.value  # type: ignore[union-attr]
        return NotImplemented

    def __getstate__(self) -> dict:
        return {"value": self.value}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


@dataclass(frozen=True, order=True)
class CanonicalConstant:
    """The canonical constant ``x̂`` associated with the variable ``x``.

    Canonical constants form the set ``Cc`` of the paper: they behave exactly
    like constants (they may appear in facts and instances) but are kept
    disjoint from the language constants ``Cl`` so that the bijection with
    the variables can always be inverted via :func:`decanonical`.
    """

    variable_name: str

    def __post_init__(self) -> None:
        if not isinstance(self.variable_name, str) or not self.variable_name:
            raise InvalidTermError(
                f"canonical constant needs a non-empty variable name, got {self.variable_name!r}"
            )
        object.__setattr__(self, "_hash", hash((CanonicalConstant, self.variable_name)))

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:  # unpickled instance: state omits the cache
            value = hash((CanonicalConstant, self.variable_name))
            object.__setattr__(self, "_hash", value)
            return value

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is CanonicalConstant:
            return self.variable_name == other.variable_name  # type: ignore[union-attr]
        return NotImplemented

    def __getstate__(self) -> dict:
        return {"variable_name": self.variable_name}

    @property
    def variable(self) -> Variable:
        """The variable this canonical constant freezes."""
        return Variable(self.variable_name)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"^{self.variable_name}"

    def __repr__(self) -> str:
        return f"CanonicalConstant({self.variable_name!r})"


#: Any term of the language.
Term = Union[Variable, Constant, CanonicalConstant]


def is_term(obj: object) -> bool:
    """Return ``True`` when *obj* is a :data:`Term`."""
    return isinstance(obj, (Variable, Constant, CanonicalConstant))


def is_constant_like(obj: object) -> bool:
    """Return ``True`` when *obj* is a constant (language or canonical).

    Constant-like terms are exactly those that may appear in facts and in
    database instances.
    """
    return isinstance(obj, (Constant, CanonicalConstant))


def canonical(variable: Variable) -> CanonicalConstant:
    """Return the canonical constant ``x̂`` for the variable ``x``.

    This implements the ``can(·)`` operator of the paper for a single
    variable; :func:`repro.queries.cq.ConjunctiveQuery.canonical_instance`
    lifts it to whole queries.
    """
    if not isinstance(variable, Variable):
        raise InvalidTermError(f"canonical() expects a Variable, got {variable!r}")
    return CanonicalConstant(variable.name)


def decanonical(constant: CanonicalConstant) -> Variable:
    """Invert :func:`canonical`: return the variable frozen by *constant*."""
    if not isinstance(constant, CanonicalConstant):
        raise InvalidTermError(f"decanonical() expects a CanonicalConstant, got {constant!r}")
    return constant.variable


def term_sort_key(term: Term) -> tuple[int, str, str]:
    """A total, structure-aware sort key for terms.

    Sorting by ``str()`` conflates distinct terms whose renderings collide
    (``Variable("a")`` vs ``Constant("a")`` vs ``Constant(1)`` vs
    ``Constant("1")``).  This key orders first by term kind (variables,
    language constants, canonical constants), then by the type of the payload,
    then by its rendering — so equal keys imply equal terms for the hashable
    payloads the library uses (strings, integers, ...).
    """
    if isinstance(term, Variable):
        return (0, "", term.name)
    if isinstance(term, Constant):
        return (1, type(term.value).__name__, str(term.value))
    if isinstance(term, CanonicalConstant):
        return (2, "", term.variable_name)
    raise InvalidTermError(f"term_sort_key() expects a term, got {term!r}")


def make_variables(*names: str) -> tuple[Variable, ...]:
    """Convenience constructor: ``make_variables("x", "y")`` -> two variables."""
    return tuple(Variable(name) for name in names)


def make_constants(*values: object) -> tuple[Constant, ...]:
    """Convenience constructor: ``make_constants("a", 1)`` -> two constants."""
    return tuple(Constant(value) for value in values)
