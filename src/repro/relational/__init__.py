"""Relational substrate: terms, atoms, schemas, substitutions, instances."""

from repro.relational.atoms import Atom, RelationSchema, make_atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.schema import DatabaseSchema
from repro.relational.substitutions import Substitution, canonical_substitution, unify_tuples
from repro.relational.terms import (
    CanonicalConstant,
    Constant,
    Term,
    Variable,
    canonical,
    decanonical,
    is_constant_like,
    is_term,
    make_constants,
    make_variables,
)

__all__ = [
    "Atom",
    "BagInstance",
    "CanonicalConstant",
    "Constant",
    "DatabaseSchema",
    "RelationSchema",
    "SetInstance",
    "Substitution",
    "Term",
    "Variable",
    "canonical",
    "canonical_substitution",
    "decanonical",
    "is_constant_like",
    "is_term",
    "make_atom",
    "make_constants",
    "make_variables",
    "unify_tuples",
]
