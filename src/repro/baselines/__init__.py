"""Baselines: brute-force refuters and cross-checking utilities."""

from repro.baselines.comparison import AgreementReport, cross_check
from repro.baselines.refuters import (
    RefutationOutcome,
    bounded_bag_refuter,
    check_bag,
    random_bag_refuter,
)

__all__ = [
    "AgreementReport",
    "RefutationOutcome",
    "bounded_bag_refuter",
    "check_bag",
    "cross_check",
    "random_bag_refuter",
]
