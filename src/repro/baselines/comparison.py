"""Cross-checking the exact decider against the baselines.

The functions here are the backbone of the integration tests and of
experiments E9/E10: they run the exact decision procedure next to the
brute-force refuters and the set/bag-set deciders and report any
disagreement (of which there must be none in the directions where the
baselines are sound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.refuters import RefutationOutcome, bounded_bag_refuter, random_bag_refuter
from repro.containment.set_containment import is_set_contained
from repro.core.decision import BagContainmentResult, decide_bag_containment
from repro.exceptions import ContainmentError
from repro.queries.cq import ConjunctiveQuery

__all__ = ["AgreementReport", "cross_check"]


@dataclass(frozen=True)
class AgreementReport:
    """Comparison of the exact decider with the baselines on one query pair.

    ``consistent`` is ``False`` only when a baseline produced evidence that
    contradicts the exact verdict (a found counterexample against a positive
    verdict, or a positive verdict of the exact decider with failing set
    containment, which is impossible because bag containment implies set
    containment).
    """

    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    exact: BagContainmentResult
    set_contained: bool
    bounded: RefutationOutcome
    randomized: RefutationOutcome
    consistent: bool
    notes: tuple[str, ...]


def cross_check(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    max_multiplicity: int = 3,
    random_trials: int = 100,
    seed: int | None = 0,
    strategy: str = "most-general",
    session=None,
) -> AgreementReport:
    """Run the exact decider and every baseline on one pair and compare.

    Raises :class:`ContainmentError` when an inconsistency is detected, so
    tests can simply call this function on generated workloads.

    All decisions run through a :class:`repro.session.Session` — the one
    passed in, else the session active in the current context, else the
    default module session — so repeated cross-checks share the session's
    compiled plans and the exact decider and the baselines see the same
    backend.  A backend explicitly selected in the context (``use_backend``
    / ``set_default_backend``) without a session keeps governing the call:
    the default session only takes over when the context made no choice.
    """
    from contextlib import nullcontext

    from repro.engine.backends import _ACTIVE_BACKEND
    from repro.session.session import current_session, default_session

    if session is None:
        session = current_session()
    if session is None and _ACTIVE_BACKEND.get() is None:
        session = default_session()
    context = session.activate() if session is not None else nullcontext()
    with context:
        exact = decide_bag_containment(containee, containing, strategy=strategy)
        set_contained = is_set_contained(containee, containing)
        bounded = bounded_bag_refuter(containee, containing, max_multiplicity=max_multiplicity)
        randomized = random_bag_refuter(
            containee, containing, trials=random_trials, seed=seed
        )

    notes: list[str] = []
    consistent = True

    if exact.contained and not set_contained:
        consistent = False
        notes.append("bag containment asserted but set containment fails")
    if exact.contained and bounded.refuted:
        consistent = False
        notes.append("bag containment asserted but the bounded refuter found a counterexample")
    if exact.contained and randomized.refuted:
        consistent = False
        notes.append("bag containment asserted but the random refuter found a counterexample")
    if not exact.contained and exact.counterexample is None:
        consistent = False
        notes.append("negative verdict without a counterexample certificate")
    if not exact.contained and exact.counterexample is not None:
        if not exact.counterexample.verify(containee, containing):
            consistent = False
            notes.append("the exact decider's counterexample does not verify")

    report = AgreementReport(
        containee=containee,
        containing=containing,
        exact=exact,
        set_contained=set_contained,
        bounded=bounded,
        randomized=randomized,
        consistent=consistent,
        notes=tuple(notes),
    )
    if not consistent:
        raise ContainmentError(
            "inconsistency between the exact decider and the baselines: " + "; ".join(notes)
        )
    return report
