"""Brute-force baselines: bounded and randomised counterexample search.

The paper's decision procedure works through the Diophantine encoding; a
natural baseline (and the obvious semi-decision procedure one would try
before reading the paper) searches directly for a counterexample bag by
enumerating or sampling bags over the canonical instances of the grounded
containee.  These refuters are

* **sound**: any violation they report is a genuine counterexample (it is
  re-verified with the evaluation engine);
* **incomplete**: failing to find a violation within the multiplicity bound
  or the trial budget proves nothing — which is exactly the gap the paper's
  exact procedure closes, and what experiment E9 quantifies.

Every candidate bag shares the same support (the canonical instance of the
grounded containee), so the homomorphisms of both queries are enumerated
exactly once per probe tuple through the engine's
:class:`~repro.engine.batch.BagBatchEvaluator`; each bag then only
re-weights the cached contribution skeletons of Equation 2 instead of
re-running the search.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from typing import Iterator, Sequence

from repro.core.certificates import ContainmentCounterexample
from repro.core.probe_tuples import iter_probe_tuples, most_general_probe_tuple
from repro.engine import BagBatchEvaluator
from repro.evaluation.bag_evaluation import bag_multiplicity
from repro.queries.cq import ConjunctiveQuery
from repro.relational.instances import BagInstance
from repro.relational.terms import Term

__all__ = [
    "RefutationOutcome",
    "check_bag",
    "bounded_bag_refuter",
    "random_bag_refuter",
]


@dataclass(frozen=True)
class RefutationOutcome:
    """Result of a (bounded or randomised) counterexample search.

    ``refuted`` tells whether a counterexample was found; ``bags_checked``
    how many candidate bags were evaluated; ``counterexample`` carries the
    violation, if any.  A ``refuted=False`` outcome does **not** establish
    containment.
    """

    refuted: bool
    bags_checked: int
    counterexample: ContainmentCounterexample | None = None

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.refuted


def check_bag(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    probe: Sequence[Term],
    bag: BagInstance,
) -> ContainmentCounterexample | None:
    """Evaluate both queries on *bag* at the answer *probe* and report a violation."""
    left = bag_multiplicity(containee, bag, probe)
    right = bag_multiplicity(containing, bag, probe)
    if left > right:
        return ContainmentCounterexample(
            probe=tuple(probe),
            bag=bag,
            containee_multiplicity=left,
            containing_multiplicity=right,
        )
    return None


def _bags_over(atoms: Sequence, max_multiplicity: int, include_zero: bool) -> Iterator[BagInstance]:
    lowest = 0 if include_zero else 1
    for values in product(range(lowest, max_multiplicity + 1), repeat=len(atoms)):
        if all(value == 0 for value in values):
            continue
        yield BagInstance({atom: value for atom, value in zip(atoms, values)})


class _ProbeChecker:
    """Per-probe violation check with the homomorphism search hoisted out.

    Both queries are compiled and enumerated once against the support of the
    grounded containee; checking a candidate bag is then a pure
    re-weighting of the cached skeletons (no search, no substitutions).
    """

    __slots__ = ("probe", "_left", "_right")

    def __init__(
        self,
        containee: ConjunctiveQuery,
        containing: ConjunctiveQuery,
        probe: tuple[Term, ...],
        support_atoms: Sequence,
    ) -> None:
        self.probe = probe
        self._left = BagBatchEvaluator(containee, support_atoms, answer=probe)
        self._right = BagBatchEvaluator(containing, support_atoms, answer=probe)

    def check(self, bag: BagInstance) -> ContainmentCounterexample | None:
        left = self._left.multiplicity(bag)
        right = self._right.multiplicity(bag)
        if left > right:
            return ContainmentCounterexample(
                probe=self.probe,
                bag=bag,
                containee_multiplicity=left,
                containing_multiplicity=right,
            )
        return None


def bounded_bag_refuter(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    max_multiplicity: int = 3,
    all_probes: bool = False,
    include_zero: bool = False,
) -> RefutationOutcome:
    """Exhaustively search for a counterexample bag with bounded multiplicities.

    For the most-general probe tuple (or every probe tuple when *all_probes*
    is set), every bag over the canonical instance of the grounded containee
    with per-fact multiplicities in ``[1, max_multiplicity]`` (or
    ``[0, max_multiplicity]`` when *include_zero* is set) is evaluated.  The
    search cost is ``max_multiplicity^|body|`` per probe tuple.
    """
    containee.require_projection_free()
    probes = iter_probe_tuples(containee) if all_probes else iter((most_general_probe_tuple(containee),))
    bags_checked = 0
    for probe in probes:
        grounded = containee.ground(probe)
        atoms = grounded.body_atoms()
        checker = _ProbeChecker(containee, containing, tuple(probe), atoms)
        for bag in _bags_over(atoms, max_multiplicity, include_zero):
            bags_checked += 1
            violation = checker.check(bag)
            if violation is not None:
                return RefutationOutcome(True, bags_checked, violation)
    return RefutationOutcome(False, bags_checked)


def random_bag_refuter(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    trials: int = 200,
    max_multiplicity: int = 6,
    seed: int | None = None,
) -> RefutationOutcome:
    """Randomly sample bags over the most-general canonical instance.

    Each trial draws independent multiplicities uniformly from
    ``[1, max_multiplicity]``.  Useful as a cheap smoke test and as the
    "guess until lucky" baseline of experiment E9.
    """
    containee.require_projection_free()
    rng = random.Random(seed)
    probe = most_general_probe_tuple(containee)
    grounded = containee.ground(probe)
    atoms = grounded.body_atoms()
    checker = _ProbeChecker(containee, containing, probe, atoms)
    for trial in range(1, trials + 1):
        bag = BagInstance({atom: rng.randint(1, max_multiplicity) for atom in atoms})
        violation = checker.check(bag)
        if violation is not None:
            return RefutationOutcome(True, trial, violation)
    return RefutationOutcome(False, trials)
