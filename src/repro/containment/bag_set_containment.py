"""Bag-set semantics containment.

Under bag-set semantics (set database, bag answers with homomorphism
counting) containment of conjunctive queries coincides with **set**
containment for the projection-free-containee case studied by the paper, and
more generally Chaudhuri–Vardi characterise bag-set *equivalence* as
isomorphism of the queries.  The module exposes:

* :func:`decide_bag_set_containment` — containment test implemented directly
  from the definition on canonical instances, with the Chandra–Merlin test as
  the fast path, so the two can be cross-checked in tests;
* :func:`are_bag_set_equivalent` — equivalence via query isomorphism.

Both bottom out in the compiled engine: the Chandra–Merlin check runs in
``exists`` mode (via :func:`repro.containment.set_containment.is_set_contained`)
and the canonical-instance cross-checks re-use the engine's cached plans for
the canonical instances, so the sanity re-evaluation is no longer a second
full search.
"""

from __future__ import annotations

from repro.containment.set_containment import is_set_contained
from repro.evaluation.bag_set_evaluation import evaluate_bag_set
from repro.queries.cq import ConjunctiveQuery
from repro.relational.instances import SetInstance

__all__ = [
    "decide_bag_set_containment",
    "are_bag_set_equivalent",
    "bag_set_counterexample_on_canonical",
]


def bag_set_counterexample_on_canonical(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery
) -> SetInstance | None:
    """Look for a violation of bag-set containment on the containee's canonical instance.

    Returns the canonical instance when the bag-set answer of the containee
    exceeds that of the containing query on it, ``None`` otherwise.  This is
    a sound refuter (not complete in general), used for cross-checking.
    """
    canonical = containee.canonical_instance()
    left = evaluate_bag_set(containee, canonical)
    right = evaluate_bag_set(containing, canonical)
    if not left.is_subbag_of(right):
        return canonical
    return None


def decide_bag_set_containment(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery
) -> bool:
    """Decide bag-set containment for a projection-free containee.

    For a projection-free containee the bag-set answer of the containee on
    any set instance assigns multiplicity at most 1 to each answer tuple
    (there is a single homomorphism per answer), so bag-set containment holds
    exactly when set containment holds.  For general containees the function
    still returns the set-containment verdict, which is the standard
    reference semantics for this sub-problem (Afrati et al.), and the
    canonical-instance refuter is used as a sanity cross-check.
    """
    verdict = is_set_contained(containee, containing)
    if verdict and containee.is_projection_free():
        # Sanity: a positive verdict can never be refuted on the canonical instance.
        assert bag_set_counterexample_on_canonical(containee, containing) is None
    return verdict


def are_bag_set_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Bag-set equivalence of CQs (Chaudhuri–Vardi): the queries are isomorphic.

    Two CQs are bag-set equivalent iff there are containment mappings both
    ways that are bijective on body atoms; equivalently, iff the queries are
    identical up to variable renaming.  We test this by checking set
    containment both ways *and* equal body sizes, then verifying with the
    bag-set evaluation on both canonical instances.
    """
    if len(first.body_atoms()) != len(second.body_atoms()):
        return False
    if not (is_set_contained(first, second) and is_set_contained(second, first)):
        return False
    for probe_query, other in ((first, second), (second, first)):
        canonical = probe_query.canonical_instance()
        if not evaluate_bag_set(probe_query, canonical).is_subbag_of(
            evaluate_bag_set(other, canonical)
        ):
            return False
    return True
