"""Set-semantics containment and equivalence of conjunctive queries.

Chandra and Merlin: ``q1 ⊑s q2`` iff there is a containment mapping from
``q2`` to ``q1`` (a homomorphism of the body of ``q2`` into the body of
``q1`` that maps the head of ``q2`` onto the head of ``q1``).  The decision
problem is NP-complete; the enumeration here is the same backtracking search
used everywhere else in the library.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import default_cache, has_homomorphism, query_fingerprint
from repro.engine.batch import head_fixing
from repro.evaluation.homomorphisms import containment_mappings
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.substitutions import Substitution

__all__ = [
    "SetContainmentResult",
    "decide_set_containment",
    "is_set_contained",
    "are_set_equivalent",
    "decide_set_containment_ucq",
]


@dataclass(frozen=True)
class SetContainmentResult:
    """Outcome of a set-containment check, with its witnessing mapping."""

    contained: bool
    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    witness: Substitution | None = None

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.contained

    def explain(self) -> str:
        """A one-paragraph human-readable explanation of the outcome."""
        if self.contained:
            return (
                f"{self.containee.name} ⊑s {self.containing.name}: the containment mapping "
                f"{self.witness!r} maps {self.containing.name} into {self.containee.name}."
            )
        return (
            f"{self.containee.name} ⋢s {self.containing.name}: no containment mapping from "
            f"{self.containing.name} to {self.containee.name} exists."
        )


def decide_set_containment(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery
) -> SetContainmentResult:
    """Decide ``containee ⊑s containing`` and return a witnessing mapping if any."""
    witness = next(containment_mappings(containing, containee), None)
    return SetContainmentResult(
        contained=witness is not None,
        containee=containee,
        containing=containing,
        witness=witness,
    )


def is_set_contained(containee: ConjunctiveQuery, containing: ConjunctiveQuery) -> bool:
    """Boolean shortcut for :func:`decide_set_containment`.

    Unlike the full decision (which materialises a witnessing mapping), this
    runs the engine in ``exists`` mode and stops at the first containment
    mapping.  The verdict is memoised under the *canonical* query
    fingerprints, which is sound — set containment is invariant under
    independent variable renaming of either query — and lets renamed copies
    of the same query pair (as the workload generators produce) share one
    decision.
    """
    if containing.arity != containee.arity:
        return False
    key = ("set-contained", query_fingerprint(containee), query_fingerprint(containing))

    def decide() -> bool:
        fixed = head_fixing(containing.head, containee.head)
        if fixed is None:
            return False
        return has_homomorphism(containing.body_atoms(), containee.body_atoms(), fixed)

    return default_cache().result(key, decide)  # type: ignore[return-value]


def are_set_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Set equivalence: containment in both directions."""
    return is_set_contained(first, second) and is_set_contained(second, first)


def decide_set_containment_ucq(
    containee: UnionOfConjunctiveQueries, containing: UnionOfConjunctiveQueries
) -> bool:
    """Sagiv–Yannakakis criterion for UCQs.

    ``⋃ q_i ⊑s ⋃ p_j`` iff every disjunct ``q_i`` is set-contained in *some*
    disjunct ``p_j``.
    """
    for disjunct in containee:
        if not any(is_set_contained(disjunct, candidate) for candidate in containing):
            return False
    return True
