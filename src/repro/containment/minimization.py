"""Query minimisation (cores) under set semantics.

The *core* of a conjunctive query is the smallest sub-query that is set
equivalent to it; it is unique up to isomorphism and is the classic object
of query minimisation (Chandra–Merlin).  Under **bag** semantics removing a
"redundant" atom generally changes answer multiplicities, so minimisation is
*not* sound for bag equivalence — which the test-suite demonstrates and which
is exactly the kind of mismatch the paper's introduction motivates.  The core
computation is still essential as a baseline and for workload analysis.
"""

from __future__ import annotations

from repro.engine import has_homomorphism
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.terms import Term, Variable

__all__ = ["core", "is_minimal", "redundant_atoms"]


def _is_endomorphism_avoiding(
    query: ConjunctiveQuery, removed: Atom
) -> bool:
    """Can the query body be folded into itself without using *removed*?

    There must be a homomorphism from the full body into the body minus
    *removed* that is the identity on the head variables.
    """
    target = [atom for atom in query.body_atoms() if atom != removed]
    if not target:
        return False
    fixed: dict[Variable, Term] = {variable: variable for variable in query.head}
    return has_homomorphism(query.body_atoms(), target, fixed)


def redundant_atoms(query: ConjunctiveQuery) -> list[Atom]:
    """Atoms that can be folded away while preserving set equivalence."""
    return [atom for atom in query.body_atoms() if _is_endomorphism_avoiding(query, atom)]


def is_minimal(query: ConjunctiveQuery) -> bool:
    """``True`` when no body atom is redundant under set semantics."""
    return not redundant_atoms(query)


def core(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Compute the core (a minimal set-equivalent sub-query) of *query*.

    Atoms are removed greedily while an endomorphism into the remaining body
    (fixing the head) exists.  Multiplicities are reset to 1: the core is a
    set-semantics notion.
    """
    remaining = list(query.set_body().body_atoms())
    changed = True
    while changed:
        changed = False
        for atom in list(remaining):
            if len(remaining) == 1:
                break
            candidate_body = [other for other in remaining if other != atom]
            fixed: dict[Variable, Term] = {variable: variable for variable in query.head}
            if has_homomorphism(remaining, candidate_body, fixed):
                remaining = candidate_body
                changed = True
    return ConjunctiveQuery(query.head, {atom: 1 for atom in remaining}, name=f"core({query.name})")
