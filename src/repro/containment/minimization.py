"""Query minimisation (cores) under set semantics.

The *core* of a conjunctive query is the smallest sub-query that is set
equivalent to it; it is unique up to isomorphism and is the classic object
of query minimisation (Chandra–Merlin).  Under **bag** semantics removing a
"redundant" atom generally changes answer multiplicities, so minimisation is
*not* sound for bag equivalence — which the test-suite demonstrates and which
is exactly the kind of mismatch the paper's introduction motivates.  The core
computation is still essential as a baseline and for workload analysis.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine import has_homomorphism
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.terms import Term, Variable

__all__ = ["core", "is_minimal", "redundant_atoms"]


def _folds_without_position(
    atoms: Sequence[Atom], head: Sequence[Variable], position: int
) -> bool:
    """Can *atoms* be folded into themselves without the atom at *position*?

    There must be a homomorphism from the full body into the body minus
    that one occurrence that is the identity on the head variables.  The
    candidate is removed **by position**, never by equality: filtering with
    ``!=`` would drop *every* syntactically equal occurrence at once, which
    both removes too much from the fold target and (in :func:`core`) could
    delete several occurrences in one step.
    """
    target = list(atoms[:position]) + list(atoms[position + 1 :])
    if not target:
        return False
    fixed: dict[Variable, Term] = {variable: variable for variable in head}
    return has_homomorphism(atoms, target, fixed)


def redundant_atoms(query: ConjunctiveQuery) -> list[Atom]:
    """Atoms that can be folded away while preserving set equivalence."""
    atoms = query.body_atoms()
    return [
        atoms[position]
        for position in range(len(atoms))
        if _folds_without_position(atoms, query.head, position)
    ]


def is_minimal(query: ConjunctiveQuery) -> bool:
    """``True`` when no body atom is redundant under set semantics."""
    return not redundant_atoms(query)


def core(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Compute the core (a minimal set-equivalent sub-query) of *query*.

    Atoms are removed greedily, one occurrence (position) at a time, while
    an endomorphism into the remaining body (fixing the head) exists.
    Multiplicities are reset to 1: the core is a set-semantics notion.
    """
    remaining = list(query.set_body().body_atoms())
    changed = True
    while changed:
        changed = False
        position = 0
        while position < len(remaining) and len(remaining) > 1:
            if _folds_without_position(remaining, query.head, position):
                remaining = remaining[:position] + remaining[position + 1 :]
                changed = True
            else:
                position += 1
    return ConjunctiveQuery(query.head, {atom: 1 for atom in remaining}, name=f"core({query.name})")
