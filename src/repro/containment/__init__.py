"""Set-semantics containment, query minimisation, and bag-set containment."""

from repro.containment.bag_set_containment import (
    are_bag_set_equivalent,
    bag_set_counterexample_on_canonical,
    decide_bag_set_containment,
)
from repro.containment.minimization import core, is_minimal, redundant_atoms
from repro.containment.set_containment import (
    SetContainmentResult,
    are_set_equivalent,
    decide_set_containment,
    decide_set_containment_ucq,
    is_set_contained,
)

__all__ = [
    "SetContainmentResult",
    "are_bag_set_equivalent",
    "are_set_equivalent",
    "bag_set_counterexample_on_canonical",
    "core",
    "decide_bag_set_containment",
    "decide_set_containment",
    "decide_set_containment_ucq",
    "is_minimal",
    "is_set_contained",
    "redundant_atoms",
]
