"""The :class:`Session` service facade: one object, every workload.

A session owns everything that used to live in process-wide module state —
the engine backend (and therefore the :class:`~repro.engine.EngineCache`
compiled plans land in), the decision-strategy selection, and the limits
(enumeration budgets, batch bounds, fuzz time budgets).  All service calls
flow through one compositional surface:

``decide``
    Containment under bag, set, or bag-set semantics.
``evaluate``
    Query evaluation under bag, set, or bag-set semantics (CQ or UCQ).
``mpi``
    The monomial–polynomial Diophantine encoding (and optional decision).
``containment_spectrum``
    Both directions, both semantics, one rewrite-safety verdict.
``verify`` / ``fuzz``
    The differential oracle on one pair / a whole campaign.
``batch``
    A streaming sweep over heterogeneous requests that amortises compiled
    match plans across the whole stream through the session cache.

Every call returns a uniform :class:`~repro.session.requests.Outcome`
(verdict + certificate + timing + cache delta).  Sessions are isolated from
each other and from the legacy module-level defaults through
:mod:`contextvars`: while a session call runs (or a ``with use_session(s):``
block is active), backend-by-name lookups anywhere in the library resolve to
the session's own backend instances, so two threads can safely run two
sessions with different backends and caches concurrently.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.analysis import hooks as _verify_hooks
from repro.engine.backends import Backend, backend_names, create_backend
from repro.engine.cache import EngineCache, snapshot_delta
from repro.engine.persist import PersistentCache
from repro.engine import backends as _backends
from repro.exceptions import DeadlineExceeded, SessionError
from repro.faults import plan as _faults
from repro.faults.plan import ActiveFaults, FaultPlan, request_scope
from repro.faults.runtime import deadline_scope, session_entry
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.instances import BagInstance, SetInstance
from repro.session.requests import (
    ContainmentRequest,
    EvaluationRequest,
    MpiRequest,
    Outcome,
)

__all__ = [
    "Limits",
    "Session",
    "SessionSpec",
    "current_session",
    "default_session",
    "use_session",
]


@dataclass(frozen=True)
class Limits:
    """Per-session resource limits.

    ``bounded_guess_max_candidates`` caps the ΠP2 guess-&-check enumeration
    (strategies exceeding it raise
    :class:`~repro.exceptions.EnumerationBudgetError`); ``max_batch_size``
    bounds how many requests one :meth:`Session.batch` stream may consume;
    ``fuzz_time_budget`` is the default wall-clock budget of
    :meth:`Session.fuzz` campaigns (``None`` = unbounded).
    """

    bounded_guess_max_candidates: int = 2_000_000
    max_batch_size: int | None = None
    fuzz_time_budget: float | None = None
    #: Wall-clock budget per service call, in milliseconds (``None`` =
    #: unbounded).  The engine driver loops poll a monotonic clock and a
    #: call that exhausts the budget yields an honest degraded Outcome
    #: (``verdict None``, ``degraded="deadline"``) instead of raising.
    deadline_ms: int | None = None

    def __post_init__(self) -> None:
        if self.bounded_guess_max_candidates < 1:
            raise SessionError("bounded_guess_max_candidates must be at least 1")
        if self.max_batch_size is not None and self.max_batch_size < 1:
            raise SessionError("max_batch_size must be at least 1 (or None)")
        if self.fuzz_time_budget is not None and self.fuzz_time_budget <= 0:
            raise SessionError("fuzz_time_budget must be positive (or None)")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise SessionError("deadline_ms must be positive (or None)")


@dataclass(frozen=True)
class SessionSpec:
    """The picklable fingerprint of a :class:`Session`'s configuration.

    A session itself drags its whole engine cache (compiled plans, target
    indexes) along, so it is the wrong thing to ship to a worker process.
    The spec carries exactly the configuration — backend name, limits,
    memoisation flag, label — and :meth:`build` rehydrates an equivalent
    session (fresh cache, same behaviour) on the other side.  This is what
    :mod:`repro.parallel` sends through pool initializers, and it works under
    both ``fork`` and ``spawn`` start methods.

    Note that backends registered through
    :func:`~repro.session.register_backend` are resolved *by name* at
    :meth:`build` time: under ``spawn`` the worker process must have imported
    the module that registers the plugin before the spec is built.
    """

    backend: str = "indexed"
    limits: Limits = Limits()
    memoize: bool = True
    name: str = "worker"
    #: ``EngineCache.capacities`` of the source session: the worker's fresh
    #: cache is sized identically, so eviction behaviour (and therefore the
    #: cache-statistics stream) matches the parent's configuration.
    cache_capacities: tuple[int, int, int] = (512, 128, 4096)
    #: The parent session's persistent store path, if any: workers attach
    #: to the *same* store (SQLite WAL + short write transactions make the
    #: sharing safe), so plans and memos built anywhere in the fleet warm
    #: every process — and the next run.
    persist_path: str | None = None
    #: Whether the source session verified plans/generated code online —
    #: workers inherit the same debugging posture.
    debug_verify_plans: bool = False
    #: The parent session's fault plan, if any: a frozen picklable value,
    #: so chaos campaigns inject the same seeded faults in every worker.
    fault_plan: FaultPlan | None = None

    def build(self) -> "Session":
        """Rehydrate an equivalent session (same configuration, fresh cache)."""
        max_plans, max_indexes, max_results = self.cache_capacities
        return Session(
            backend=self.backend,
            cache=EngineCache(
                max_plans=max_plans, max_indexes=max_indexes, max_results=max_results
            ),
            limits=self.limits,
            memoize=self.memoize,
            name=self.name,
            persist_path=self.persist_path,
            debug_verify_plans=self.debug_verify_plans,
            fault_plan=self.fault_plan,
        )


_SESSION_COUNTER = itertools.count(1)

#: The session active in the current context (thread / task), if any.
_CURRENT_SESSION: ContextVar["Session | None"] = ContextVar(
    "repro_current_session", default=None
)

#: The lazily created module-default session the legacy shims delegate to.
_DEFAULT_SESSION: "Session | None" = None
_DEFAULT_SESSION_LOCK = threading.Lock()


class Session:
    """A self-contained service instance of the whole library.

    Parameters
    ----------
    backend:
        The default engine backend name for this session (any registered
        name; ``indexed`` unless overridden).
    cache:
        The engine cache the session's stateful backends share; a fresh
        :class:`EngineCache` is created when omitted.
    limits:
        Resource limits (see :class:`Limits`).
    name:
        A label for logs and outcome traces; auto-numbered when omitted.
    memoize:
        Memoise pure decision and encoding results in the session cache's
        result layer (default on): repeated identical requests — the common
        shape of production traffic — are answered without re-running the
        pipeline, and show up as ``results`` hits in outcome cache deltas.
    persist_path:
        Back the session cache with a disk store at this path
        (:class:`~repro.engine.persist.PersistentCache`): compiled plans,
        count/exists memos and decision verdicts warm across restarts, and
        parallel workers built from :meth:`spec` share the same store.  A
        missing/corrupt store silently degrades to cold behaviour.
    fault_plan:
        Arm a :class:`~repro.faults.plan.FaultPlan` for every call made
        through this session (chaos campaigns and resilience tests); the
        plan travels inside :meth:`spec` so parallel workers inject the
        same seeded faults.  ``None`` (the default) keeps every injection
        site a no-op.
    """

    def __init__(
        self,
        backend: str = "indexed",
        cache: EngineCache | None = None,
        limits: Limits | None = None,
        name: str | None = None,
        memoize: bool = True,
        persist_path: "str | Path | None" = None,
        debug_verify_plans: bool = False,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.name = name if name is not None else f"session-{next(_SESSION_COUNTER)}"
        self.cache = cache if cache is not None else EngineCache()
        self.limits = limits if limits is not None else Limits()
        self.memoize = memoize
        #: When true, every plan compiled or retrieved while this session is
        #: active is soundness-verified, and every generated function is
        #: AST-verified at compile time (see :mod:`repro.analysis`).
        self.debug_verify_plans = debug_verify_plans
        self._backends: dict[str, Backend] = {}
        if backend not in backend_names():
            raise SessionError(
                f"unknown engine backend {backend!r}; expected one of {backend_names()}"
            )
        self.backend_name = backend
        self.fault_plan = fault_plan
        #: The armed per-process fault state; counters persist across the
        #: session's activations so count/after schedules span calls.
        self._active_faults = ActiveFaults(fault_plan) if fault_plan is not None else None
        self.persist_path = str(persist_path) if persist_path is not None else None
        if self.persist_path is not None:
            from repro.engine.fingerprints import persistent_digest
            from repro.faults.plan import use_faults

            # Arm the plan while the store connects, so ``persist.connect``
            # faults exercise the degraded-open path.
            with use_faults(self._active_faults):
                store = PersistentCache(
                    self.persist_path,
                    backend=self.backend_name,
                    limits_fingerprint=persistent_digest(self.limits),
                )
            self.cache.attach_persistent(store)

    @property
    def persistent(self) -> "PersistentCache | None":
        """The persistent cache tier backing this session, if any."""
        return self.cache.persistent

    @property
    def active_faults(self) -> ActiveFaults | None:
        """The armed per-process fault state built from ``fault_plan``, if any.

        The parallel chunk worker re-publishes this around its request loop
        so ``parallel.request`` faults fire outside :meth:`activate`.
        """
        return self._active_faults

    def close(self) -> None:
        """Detach and close the persistent tier (the session stays usable, cold)."""
        persistent = self.cache.persistent
        if persistent is not None:
            self.cache.attach_persistent(None)
            persistent.close()

    # ------------------------------------------------------------------ #
    # Backend ownership and context activation
    # ------------------------------------------------------------------ #
    def backend_instance(self, name: str | None = None) -> Backend:
        """The session-owned backend instance for *name* (built on first use).

        Stateful backends are constructed with the session's cache, so every
        backend of this session shares one plan/result memo; the instances
        are private to the session and never leak into other sessions or the
        process-wide defaults.
        """
        resolved = name if name is not None else self.backend_name
        if resolved not in self._backends:
            self._backends[resolved] = create_backend(resolved, cache=self.cache)
        return self._backends[resolved]

    @property
    def backend(self) -> Backend:
        """The session's default backend instance."""
        return self.backend_instance()

    @contextmanager
    def activate(self):
        """Make this session the context-local default for the enclosed block.

        Inside the block, :func:`repro.engine.get_default_backend` resolves
        to the session's backend and name-based lookups (including
        ``use_backend`` switches made by nested code such as the
        differential oracle) resolve to session-owned instances.  Activation
        nests and is restored on exit, so sessions compose with each other
        and with the legacy context managers.
        """
        session_token = _CURRENT_SESSION.set(self)
        provider_token = _backends._ACTIVE_PROVIDER.set(self.backend_instance)
        backend_token = _backends._ACTIVE_BACKEND.set(self.backend_instance())
        verify_token = (
            _verify_hooks.set_enabled(True) if self.debug_verify_plans else None
        )
        faults_token = (
            _faults._ACTIVE.set(self._active_faults)
            if self._active_faults is not None
            else None
        )
        try:
            yield self
        finally:
            if faults_token is not None:
                _faults._ACTIVE.reset(faults_token)
            if verify_token is not None:
                _verify_hooks.reset(verify_token)
            _backends._ACTIVE_BACKEND.reset(backend_token)
            _backends._ACTIVE_PROVIDER.reset(provider_token)
            _CURRENT_SESSION.reset(session_token)

    # ------------------------------------------------------------------ #
    # The uniform execution wrapper
    # ------------------------------------------------------------------ #
    def _execute(
        self,
        request: Any,
        run: Callable[[], Any],
        interpret: Callable[[Any], tuple[bool | None, Any | None]],
        memo_key: Any | None = None,
        use_deadline: bool = True,
    ) -> Outcome:
        deadline_ms = self.limits.deadline_ms if use_deadline else None
        with self.activate():
            before = self.cache.snapshot()
            started = time.perf_counter()
            try:
                with deadline_scope(deadline_ms):
                    # The ``session.execute`` injection site plus an up-front
                    # deadline check: admission latency and already-expired
                    # budgets degrade the call before any memo lookup or
                    # engine work (one ContextVar read each when unarmed).
                    session_entry()
                    if memo_key is not None and self.memoize:
                        # Decision and encoding results are pure functions of
                        # frozen request values, so memoising them in the
                        # session cache's result layer is always sound;
                        # repeated requests — the common shape of production
                        # traffic — hit here and skip the whole pipeline.  The
                        # hit shows up in the outcome's cache delta under
                        # ``results``.  A deadline abort raises out of the
                        # build before anything is cached, so a degraded run
                        # never poisons the memo.
                        value = self.cache.result(("session", memo_key), run)
                    else:
                        value = run()
            except DeadlineExceeded:
                elapsed = time.perf_counter() - started
                cache = snapshot_delta(self.cache.snapshot(), before)
                # Honest degradation: no verdict is ever guessed — the
                # outcome says "unknown, out of budget" with partial timing.
                return Outcome(
                    request=request,
                    value=None,
                    verdict=None,
                    certificate=None,
                    elapsed=elapsed,  # lint: disable=determinism-taint -- elapsed is timing metadata by design; it is excluded from digests, verdicts, and certificates
                    cache=cache,
                    degraded="deadline",
                )
            elapsed = time.perf_counter() - started
            cache = snapshot_delta(self.cache.snapshot(), before)
        verdict, certificate = interpret(value)
        return Outcome(
            request=request,
            value=value,
            verdict=verdict,
            certificate=certificate,
            elapsed=elapsed,  # lint: disable=determinism-taint -- elapsed is timing metadata by design; it is excluded from digests, verdicts, and certificates
            cache=cache,
        )

    # ------------------------------------------------------------------ #
    # Decision
    # ------------------------------------------------------------------ #
    def decide(
        self,
        containee: ConjunctiveQuery | ContainmentRequest,
        containing: ConjunctiveQuery | None = None,
        **options: Any,
    ) -> Outcome:
        """Decide a containment request (or an inline pair + options).

        Accepts either a prepared :class:`ContainmentRequest` or the pair
        plus any of its keyword fields (``semantics``, ``strategy``,
        ``diophantine_path``, ``verify_certificates``).
        """
        request = self._containment_request(containee, containing, options)
        return self._execute(
            request,
            lambda: self._run_containment(request),
            self._interpret_containment,
            # Query __eq__/__hash__ are structural (names are ignored), but
            # results embed the query objects — explain() prints their names
            # and certificates reference them — so the memo must distinguish
            # renamed copies to hand every caller back its own queries.
            memo_key=(request, request.containee.name, request.containing.name),
        )

    @staticmethod
    def _containment_request(
        containee: ConjunctiveQuery | ContainmentRequest,
        containing: ConjunctiveQuery | None,
        options: dict[str, Any],
    ) -> ContainmentRequest:
        if isinstance(containee, ContainmentRequest):
            if containing is not None or options:
                raise SessionError(
                    "pass either a ContainmentRequest or (containee, containing, **options), not both"
                )
            return containee
        if containing is None:
            raise SessionError("decide() needs a containing query")
        return ContainmentRequest(containee, containing, **options)

    def _run_containment(self, request: ContainmentRequest) -> Any:
        if request.semantics == "bag":
            from repro.core.decision import decide_bag_containment

            return decide_bag_containment(
                request.containee,
                request.containing,
                strategy=request.strategy,
                use_lp=(request.diophantine_path == "lp"),
                verify_counterexamples=request.verify_certificates,
                max_candidates=self.limits.bounded_guess_max_candidates,
            )
        if request.semantics == "set":
            from repro.containment.set_containment import decide_set_containment

            return decide_set_containment(request.containee, request.containing)
        from repro.containment.bag_set_containment import decide_bag_set_containment

        return decide_bag_set_containment(request.containee, request.containing)

    @staticmethod
    def _interpret_containment(value: Any) -> tuple[bool | None, Any | None]:
        if isinstance(value, bool):  # bag-set containment returns a plain bool
            return value, None
        verdict = value.contained
        certificate = getattr(value, "counterexample", None)
        if certificate is None:
            certificate = getattr(value, "witness", None)
        return verdict, certificate

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries | EvaluationRequest,
        instance: BagInstance | SetInstance | None = None,
        **options: Any,
    ) -> Outcome:
        """Evaluate a query (or a prepared :class:`EvaluationRequest`)."""
        if isinstance(query, EvaluationRequest):
            if instance is not None or options:
                raise SessionError(
                    "pass either an EvaluationRequest or (query, instance, **options), not both"
                )
            request = query
        else:
            if instance is None:
                raise SessionError("evaluate() needs an instance")
            request = EvaluationRequest(query, instance, **options)
        return self._execute(
            request, lambda: self._run_evaluation(request), lambda value: (None, None)
        )

    @staticmethod
    def _run_evaluation(request: EvaluationRequest) -> Any:
        query, instance = request.query, request.instance
        is_ucq = isinstance(query, UnionOfConjunctiveQueries)

        if request.semantics == "bag":
            if not isinstance(instance, BagInstance):
                raise SessionError("bag-semantics evaluation needs a BagInstance")
            from repro.evaluation.bag_evaluation import (
                bag_multiplicity,
                evaluate_bag,
                evaluate_bag_ucq,
            )

            if request.answer is not None:
                if is_ucq:
                    return evaluate_bag_ucq(query, instance)[request.answer]
                return bag_multiplicity(query, instance, request.answer)
            return evaluate_bag_ucq(query, instance) if is_ucq else evaluate_bag(query, instance)

        support = instance.support() if isinstance(instance, BagInstance) else instance
        if request.semantics == "set":
            from repro.evaluation.set_evaluation import evaluate_set, evaluate_set_ucq

            answers = (
                evaluate_set_ucq(query, support) if is_ucq else evaluate_set(query, support)
            )
            if request.answer is not None:
                return request.answer in answers
            return answers

        from repro.evaluation.bag_set_evaluation import evaluate_bag_set, evaluate_bag_set_ucq

        answers = (
            evaluate_bag_set_ucq(query, support) if is_ucq else evaluate_bag_set(query, support)
        )
        if request.answer is not None:
            return answers[request.answer]
        return answers

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def mpi(
        self,
        containee: ConjunctiveQuery | MpiRequest,
        containing: ConjunctiveQuery | None = None,
        **options: Any,
    ) -> Outcome:
        """Encode the MPI of a pair (or a prepared :class:`MpiRequest`).

        With ``decide=True`` the outcome's value is ``(encoding, decision)``
        and the verdict reports Diophantine solvability (with the witness as
        the certificate); otherwise the value is the bare encoding.
        """
        if isinstance(containee, MpiRequest):
            if containing is not None or options:
                raise SessionError(
                    "pass either an MpiRequest or (containee, containing, **options), not both"
                )
            request = containee
        else:
            if containing is None:
                raise SessionError("mpi() needs a containing query")
            request = MpiRequest(containee, containing, **options)
        return self._execute(
            request,
            lambda: self._run_mpi(request),
            self._interpret_mpi,
            memo_key=(request, request.containee.name, request.containing.name),
        )

    @staticmethod
    def _run_mpi(request: MpiRequest) -> Any:
        from repro.core.encoding import encode, encode_most_general

        if request.probe is None:
            encoding = encode_most_general(request.containee, request.containing)
        else:
            encoding = encode(request.containee, request.containing, request.probe)
        if not request.decide:
            return encoding
        from repro.diophantine.solver import decide_mpi, decide_mpi_via_lp

        solver = decide_mpi_via_lp if request.diophantine_path == "lp" else decide_mpi
        return encoding, solver(encoding.inequality)

    @staticmethod
    def _interpret_mpi(value: Any) -> tuple[bool | None, Any | None]:
        if isinstance(value, tuple):
            _, decision = value
            return decision.solvable, decision.witness
        return None, None

    # ------------------------------------------------------------------ #
    # Spectrum, verification, fuzzing
    # ------------------------------------------------------------------ #
    def containment_spectrum(
        self, left: ConjunctiveQuery, right: ConjunctiveQuery
    ) -> Outcome:
        """Compare two queries under both semantics in both directions.

        The verdict reports rewrite safety (bag equivalence); the value is
        the full :class:`~repro.core.spectrum.ContainmentSpectrum`.
        """
        from repro.core.spectrum import compare

        return self._execute(
            ("containment_spectrum", left.name, right.name),
            lambda: compare(left, right),
            lambda spectrum: (spectrum.is_safe_substitution(), None),
        )

    def verify(
        self,
        containee: ConjunctiveQuery,
        containing: ConjunctiveQuery,
        config: Any | None = None,
    ) -> Outcome:
        """Run the differential oracle on one pair through this session.

        The verdict is the cross-path consensus (``None`` when the paths
        disagree); discrepancies live on the value, an
        :class:`~repro.verify.OracleReport`.
        """
        from repro.verify.oracles import run_differential_oracle

        return self._execute(
            ("verify", containee.name, containing.name),
            lambda: run_differential_oracle(containee, containing, config),
            lambda report: (report.consensus if report.ok else None, None),
            # The oracle runs many decisions; its budget is the campaign
            # time budget, not the per-request deadline.
            use_deadline=False,
        )

    def fuzz(
        self,
        cases: int = 200,
        seed: int = 0,
        config: Any | None = None,
        **overrides: Any,
    ) -> Outcome:
        """Run a differential fuzz campaign routed through this session.

        Builds a :class:`~repro.verify.CampaignConfig` from the arguments
        (or takes a prepared one via ``config``), applies the session's
        fuzz time budget when none is given, and executes the campaign with
        the session active, so every inline decision shares the session's
        backends and cache.  The verdict reports a clean campaign; the value
        is the full :class:`~repro.verify.CampaignReport`.
        """
        from repro.verify.runner import CampaignConfig, run_campaign

        if config is None:
            if "time_budget" not in overrides and self.limits.fuzz_time_budget is not None:
                overrides["time_budget"] = self.limits.fuzz_time_budget
            overrides.setdefault("debug_verify_plans", self.debug_verify_plans)
            config = CampaignConfig(cases=cases, seed=seed, **overrides)
        elif overrides:
            raise SessionError("pass either a prepared CampaignConfig or overrides, not both")
        return self._execute(
            ("fuzz", config.cases, config.seed),
            lambda: run_campaign(config, session=self),
            lambda report: (report.ok, None),
            # Campaigns budget themselves via ``time_budget``; the
            # per-request deadline is applied per case by the runner
            # (``CampaignConfig.deadline_ms``), never to the whole campaign.
            use_deadline=False,
        )

    # ------------------------------------------------------------------ #
    # Streaming batches
    # ------------------------------------------------------------------ #
    def submit(
        self, request: ContainmentRequest | EvaluationRequest | MpiRequest
    ) -> Outcome:
        """Execute one prepared request (the single-step form of :meth:`batch`)."""
        if isinstance(request, ContainmentRequest):
            return self.decide(request)
        if isinstance(request, EvaluationRequest):
            return self.evaluate(request)
        if isinstance(request, MpiRequest):
            return self.mpi(request)
        raise SessionError(f"cannot dispatch request of type {type(request).__name__}")

    def submit_captured(self, request: Any) -> Outcome:
        """Execute one request, folding any failure into an error outcome.

        This is the per-request step of ``batch(capture_errors=True)``; the
        parallel worker path calls the same method so serial and sharded
        streams render failures identically.
        """
        try:
            return self.submit(request)
        except Exception as error:  # noqa: BLE001 - service streams must survive
            return Outcome(request=request, value=None, error=repr(error))

    def spec(self, name: str | None = None) -> SessionSpec:
        """The picklable :class:`SessionSpec` that rehydrates this session's twin.

        The spec carries the backend *name*, limits and memoisation flag —
        not the cache — so a worker process can build an equivalent session
        cheaply (see :mod:`repro.parallel`).
        """
        return SessionSpec(
            backend=self.backend_name,
            limits=self.limits,
            memoize=self.memoize,
            name=name if name is not None else f"{self.name}-worker",
            cache_capacities=self.cache.capacities,
            persist_path=self.persist_path,
            debug_verify_plans=self.debug_verify_plans,
            fault_plan=self.fault_plan,
        )

    def batch(
        self,
        requests: Iterable[ContainmentRequest | EvaluationRequest | MpiRequest],
        capture_errors: bool = False,
        jobs: int | str = 1,
        chunk_size: int | None = None,
        task_timeout: float | None = None,
    ) -> Iterator[Outcome]:
        """Stream outcomes for a sweep of heterogeneous requests.

        With ``jobs=1`` (the default) execution is lazy (one request at a
        time, results yielded as they finish) and *amortised*: every request
        runs against the session's engine cache, so repeated sources,
        targets, and probe sweeps reuse compiled match plans, shared target
        indexes, memoised scalar results — and, with ``memoize`` on, whole
        decision results — across the stream, the service-path equivalent of
        the engine's batch APIs.

        With ``jobs > 1`` the request stream is sharded across a worker
        pool (:func:`repro.parallel.parallel_batch`): each worker runs its
        own session built from :meth:`spec`, chunks are scheduled
        work-stealing style so skewed workloads balance, outcomes stream
        back **in request order** with the same verdicts and certificates
        as the serial path, and worker cache deltas are folded back into
        this session's cache statistics.  ``chunk_size`` overrides the
        chunking heuristic (requests per worker task).  ``jobs="auto"``
        sizes the pool to the machine's core count
        (:func:`repro.parallel.resolve_jobs`); on a single-core box it
        falls back to the serial path with a once-per-process warning.

        With ``capture_errors=True`` a failing request yields an
        :class:`Outcome` carrying the error instead of raising, so one
        poisoned request cannot kill the stream.  The session's
        ``max_batch_size`` limit bounds how many requests are consumed.

        ``task_timeout`` (parallel path only) bounds each worker task's
        wall clock in seconds: a hung or dead worker's chunk is retried on
        another worker and, if it keeps failing, bisected until the poison
        request is quarantined (see :func:`repro.parallel.parallel_batch`).
        """
        if jobs == "auto" or not isinstance(jobs, int):
            from repro.parallel import resolve_jobs

            try:
                jobs = resolve_jobs(jobs)
            except Exception as error:
                raise SessionError(str(error)) from error
        if jobs < 1:
            raise SessionError("jobs must be at least 1")
        limit = self.limits.max_batch_size

        if jobs > 1:
            materialized = []
            for index, request in enumerate(requests):
                if limit is not None and index >= limit:
                    raise SessionError(
                        f"batch exceeded the session's max_batch_size limit of {limit}"
                    )
                materialized.append(request)
            from repro.parallel import parallel_batch

            yield from parallel_batch(
                self,
                materialized,
                jobs=jobs,
                chunk_size=chunk_size,
                capture_errors=capture_errors,
                task_timeout=task_timeout,
            )
            return

        for index, request in enumerate(requests):
            if limit is not None and index >= limit:
                raise SessionError(
                    f"batch exceeded the session's max_batch_size limit of {limit}"
                )
            # The ambient request key lets keyed fault rules target the same
            # absolute index on the serial and parallel paths alike.  The
            # outcome is computed inside the scope but yielded outside it,
            # so the key never leaks into the consumer's context.
            with request_scope(index):
                outcome = (
                    self.submit_captured(request)
                    if capture_errors
                    else self.submit(request)
                )
            yield outcome

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.name!r}, backend={self.backend_name!r})"


def current_session() -> Session | None:
    """The session active in the current context, or ``None``."""
    return _CURRENT_SESSION.get()


def default_session() -> Session:
    """The lazily created module-default session the legacy shims delegate to.

    Initialisation is locked: concurrent first calls from two threads must
    agree on one session (and therefore one cache), not race to build two.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        with _DEFAULT_SESSION_LOCK:
            if _DEFAULT_SESSION is None:
                _DEFAULT_SESSION = Session(name="default")
    return _DEFAULT_SESSION


@contextmanager
def use_session(session: Session):
    """Make *session* the context-local default for a ``with`` block."""
    with session.activate():
        yield session
