"""Typed requests and the uniform :class:`Outcome` of the session API.

Every service call of a :class:`~repro.session.Session` is described by a
small frozen request dataclass — :class:`ContainmentRequest`,
:class:`EvaluationRequest`, :class:`MpiRequest` — and answered with an
:class:`Outcome` that uniformly carries the verdict, the certificate (when
one exists), the wall-clock timing, and the per-call cache-statistics delta
of the session's engine cache.  Requests are plain values: they can be
built ahead of time, shipped over a queue, logged, and replayed, which is
what :meth:`Session.batch` streams over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import SessionError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.terms import Term

__all__ = [
    "CONTAINMENT_SEMANTICS",
    "EVALUATION_SEMANTICS",
    "ContainmentRequest",
    "EvaluationRequest",
    "MpiRequest",
    "Outcome",
]

#: The semantics a containment decision can be requested under.
CONTAINMENT_SEMANTICS = ("bag", "set", "bag-set")

#: The semantics a query evaluation can be requested under.
EVALUATION_SEMANTICS = ("bag", "set", "bag-set")


@dataclass(frozen=True)
class ContainmentRequest:
    """Decide ``containee ⊑ containing`` under the requested semantics.

    ``strategy`` and ``diophantine_path`` only apply to bag semantics (the
    paper's procedure); set and bag-set containment have a single decision
    path each.  ``verify_certificates`` re-checks negative bag verdicts by
    replaying the counterexample through direct bag evaluation.
    """

    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    semantics: str = "bag"
    strategy: str = "most-general"
    diophantine_path: str = "exact"
    verify_certificates: bool = True

    def __post_init__(self) -> None:
        if self.semantics not in CONTAINMENT_SEMANTICS:
            raise SessionError(
                f"unknown containment semantics {self.semantics!r}; "
                f"expected one of {CONTAINMENT_SEMANTICS}"
            )
        if self.diophantine_path not in ("exact", "lp"):
            raise SessionError(
                f"unknown diophantine path {self.diophantine_path!r}; expected 'exact' or 'lp'"
            )


@dataclass(frozen=True)
class EvaluationRequest:
    """Evaluate *query* on *instance* under the requested semantics.

    ``query`` may be a CQ or a UCQ.  Bag semantics needs a
    :class:`BagInstance`; set and bag-set semantics accept either (a bag is
    collapsed to its support, matching the paper's conventions).  With
    ``answer`` set, only that tuple's multiplicity / membership is computed.
    """

    query: ConjunctiveQuery | UnionOfConjunctiveQueries
    instance: BagInstance | SetInstance
    semantics: str = "bag"
    answer: tuple[Term, ...] | None = None

    def __post_init__(self) -> None:
        if self.semantics not in EVALUATION_SEMANTICS:
            raise SessionError(
                f"unknown evaluation semantics {self.semantics!r}; "
                f"expected one of {EVALUATION_SEMANTICS}"
            )
        if self.answer is not None:
            object.__setattr__(self, "answer", tuple(self.answer))


@dataclass(frozen=True)
class MpiRequest:
    """Encode (and optionally decide) the MPI of a containment instance.

    Without ``probe`` the most-general probe tuple (Theorem 5.3) is used.
    With ``decide=True`` the encoded inequality is also run through the
    Diophantine solver along ``diophantine_path``.
    """

    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    probe: tuple[Term, ...] | None = None
    decide: bool = False
    diophantine_path: str = "exact"

    def __post_init__(self) -> None:
        if self.probe is not None:
            object.__setattr__(self, "probe", tuple(self.probe))
        if self.diophantine_path not in ("exact", "lp"):
            raise SessionError(
                f"unknown diophantine path {self.diophantine_path!r}; expected 'exact' or 'lp'"
            )


@dataclass(frozen=True)
class Outcome:
    """The uniform answer of every session service call.

    Attributes
    ----------
    request:
        The request this outcome answers (one of the dataclasses above, or
        a short string tag for convenience calls such as ``fuzz``).
    value:
        The full native result object (a
        :class:`~repro.core.decision.BagContainmentResult`, an
        :class:`~repro.evaluation.AnswerBag`, an
        :class:`~repro.core.encoding.MpiEncoding`, a
        :class:`~repro.core.spectrum.ContainmentSpectrum`, an
        :class:`~repro.verify.OracleReport`, a
        :class:`~repro.verify.CampaignReport`, …).
    verdict:
        The boolean essence of the result where one exists (containment
        holds, MPI solvable, substitution safe, campaign clean); ``None``
        for pure computations such as evaluation.
    certificate:
        The witness backing the verdict, when the decision path produces
        one (a counterexample bag, a containment mapping, a Diophantine
        witness).
    elapsed:
        Wall-clock seconds spent inside the session on this call.
    cache:
        The session cache's ``(hits, misses, evictions)`` delta per layer
        for this call — what the call itself did to the cache.
    error:
        ``None`` for successful calls.  :meth:`Session.batch` with
        ``capture_errors=True`` records a failed request's exception here
        instead of raising, so one poisoned request cannot kill a stream.
    degraded:
        ``None`` for full-fidelity answers.  A short reason tag when the
        hardened runtime degraded the call honestly instead of answering:
        ``"deadline"`` (the wall-clock budget expired mid-plan; ``verdict``
        is ``None`` — *unknown*, never a guess — and ``elapsed`` holds the
        partial timing) or ``"quarantined"`` (a parallel batch isolated
        this request after repeated worker crashes; ``error`` carries the
        worker-side failure).
    """

    request: Any
    value: Any
    verdict: bool | None = None
    certificate: Any | None = None
    elapsed: float = 0.0
    cache: Mapping[str, tuple[int, int, int]] = field(default_factory=dict)
    error: str | None = None
    degraded: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def explain(self) -> str:
        """A one-line human-readable summary of the outcome."""
        if self.error is not None:
            tag = f" [{self.degraded}]" if self.degraded is not None else ""
            return f"error after {self.elapsed * 1000:.1f}ms{tag}: {self.error}"
        if self.degraded is not None:
            return f"degraded ({self.degraded}) after {self.elapsed * 1000:.1f}ms"
        verdict = "" if self.verdict is None else f" verdict={self.verdict}"
        certified = "" if self.certificate is None else " (certified)"
        return f"{type(self.value).__name__}{verdict}{certified} in {self.elapsed * 1000:.1f}ms"
