"""Deprecation shims: the legacy top-level call paths, kept working.

Every service-style function that used to be called straight off the
``repro`` namespace keeps working, but now executes *over the default
module session* (:func:`repro.session.default_session`) — same code paths,
same results, one shared cache — and emits a :class:`DeprecationWarning`
pointing at the session replacement.  Each warning fires exactly once per
(function, calling module) pair, so a migration sweep sees every distinct
call site without a hot loop drowning the log.

The warnings are attributed to the *caller* (``stacklevel``), which is what
makes the test suite's ``error::DeprecationWarning:repro\\..*`` filter an
architecture check: any module inside ``repro.*`` that calls one of its own
deprecated shims fails the build, while downstream callers merely see the
warning.

Only this module may call the wrapped legacy functions without triggering
that check; everything else inside the library goes through sessions or the
underlying submodules directly.
"""

from __future__ import annotations

import functools
import sys
import warnings
from typing import Any, Callable

from repro.baselines import comparison as _comparison
from repro.containment import bag_set_containment as _bag_set
from repro.containment import set_containment as _set
from repro.core import decision as _decision
from repro.core import encoding as _encoding
from repro.core import spectrum as _spectrum
from repro.engine import backends as _backends
from repro.engine import batch as _batch
from repro.evaluation import bag_evaluation as _bag_eval
from repro.evaluation import bag_set_evaluation as _bag_set_eval
from repro.evaluation import set_evaluation as _set_eval
from repro.session.session import default_session
from repro.verify import oracles as _oracles
from repro.verify import runner as _runner

__all__ = [
    "DEPRECATED_SHIMS",
    "reset_shim_warnings",
    # the shims themselves
    "decide_bag_containment",
    "is_bag_contained",
    "are_bag_equivalent",
    "decide_set_containment",
    "is_set_contained",
    "are_set_equivalent",
    "decide_bag_set_containment",
    "are_bag_set_equivalent",
    "evaluate_bag",
    "evaluate_set",
    "evaluate_bag_set",
    "evaluate_bag_many",
    "encode",
    "encode_most_general",
    "compare",
    "cross_check",
    "run_differential_oracle",
    "run_campaign",
    "set_default_backend",
    "use_backend",
]

#: ``(shim name, calling module, line)`` triples that have already warned.
_WARNED: set[tuple[str, str, int]] = set()  # lint: disable=global-mutable-state -- once-per-call-site warning dedup, reset via reset_shim_warnings()


def reset_shim_warnings() -> None:
    """Forget which call sites have warned (for tests and long-lived REPLs)."""
    _WARNED.clear()


def _warn_deprecated(name: str, replacement: str) -> None:
    frame = sys._getframe(2)
    key = (name, frame.f_globals.get("__name__", "<unknown>"), frame.f_lineno)
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(
        f"repro.{name}() is deprecated; use {replacement} (see the README's Session API section)",
        DeprecationWarning,
        stacklevel=3,
    )


def _session_shim(replacement: str, func: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap *func*: warn once per call site, then run over the default session.

    The default session only takes over when the context has made no
    explicit choice of its own: a backend selected via ``use_backend`` /
    ``set_default_backend`` or an already-active session must keep governing
    the call (activating the default session here would silently override
    it), so in that case the legacy function runs in the context as-is.
    """

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        _warn_deprecated(func.__name__, replacement)
        if _backends._ACTIVE_BACKEND.get() is not None:
            return func(*args, **kwargs)
        with default_session().activate():
            return func(*args, **kwargs)

    wrapper.__deprecated_replacement__ = replacement
    return wrapper


def _plain_shim(replacement: str, func: Callable[..., Any]) -> Callable[..., Any]:
    """Warn-only wrapper for context-manipulating functions.

    ``set_default_backend`` / ``use_backend`` mutate the context themselves;
    running them inside a session activation would undo the mutation on
    exit, so they are delegated as-is.
    """

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        _warn_deprecated(func.__name__, replacement)
        return func(*args, **kwargs)

    wrapper.__deprecated_replacement__ = replacement
    return wrapper


decide_bag_containment = _session_shim("Session.decide()", _decision.decide_bag_containment)
is_bag_contained = _session_shim("Session.decide().verdict", _decision.is_bag_contained)
are_bag_equivalent = _session_shim("Session.decide() in both directions", _decision.are_bag_equivalent)

decide_set_containment = _session_shim(
    "Session.decide(semantics='set')", _set.decide_set_containment
)
is_set_contained = _session_shim("Session.decide(semantics='set').verdict", _set.is_set_contained)
are_set_equivalent = _session_shim(
    "Session.decide(semantics='set') in both directions", _set.are_set_equivalent
)
decide_bag_set_containment = _session_shim(
    "Session.decide(semantics='bag-set')", _bag_set.decide_bag_set_containment
)
are_bag_set_equivalent = _session_shim(
    "Session.decide(semantics='bag-set') in both directions", _bag_set.are_bag_set_equivalent
)

evaluate_bag = _session_shim("Session.evaluate()", _bag_eval.evaluate_bag)
evaluate_set = _session_shim("Session.evaluate(semantics='set')", _set_eval.evaluate_set)
evaluate_bag_set = _session_shim(
    "Session.evaluate(semantics='bag-set')", _bag_set_eval.evaluate_bag_set
)
evaluate_bag_many = _session_shim("Session.batch()", _batch.evaluate_bag_many)

encode = _session_shim("Session.mpi(probe=...)", _encoding.encode)
encode_most_general = _session_shim("Session.mpi()", _encoding.encode_most_general)

compare = _session_shim("Session.containment_spectrum()", _spectrum.compare)
cross_check = _session_shim("cross_check(session=...)", _comparison.cross_check)

run_differential_oracle = _session_shim("Session.verify()", _oracles.run_differential_oracle)
run_campaign = _session_shim("Session.fuzz()", _runner.run_campaign)

set_default_backend = _plain_shim(
    "Session(backend=...) / repro.session.use_session", _backends.set_default_backend
)
use_backend = _plain_shim(
    "Session(backend=...) / repro.session.use_session", _backends.use_backend
)

#: Shim name → replacement hint, for docs and the README migration table.
DEPRECATED_SHIMS: dict[str, str] = {  # lint: disable=global-mutable-state -- constant-after-import lookup table consumed by docs and the shim-call lint rule
    name: getattr(globals()[name], "__deprecated_replacement__")
    for name in __all__
    if name not in ("DEPRECATED_SHIMS", "reset_shim_warnings")
}
