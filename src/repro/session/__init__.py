"""The session-centric service API: decision, evaluation, verification.

One :class:`Session` object owns its engine backend, its
:class:`~repro.engine.EngineCache`, its strategy selection and its limits,
and exposes every workload of the library behind a uniform facade::

    from repro.session import Session

    session = Session(backend="indexed")
    outcome = session.decide(q1, q2)           # bag containment
    outcome.verdict, outcome.certificate, outcome.elapsed, outcome.cache

    for outcome in session.batch(requests):    # streaming, plan-amortised
        ...

Sessions replace the process-global mutable defaults of earlier API
generations: resolution is :mod:`contextvars`-backed, so concurrent threads
and tasks can hold different sessions (different backends, different
caches) without interference.  The legacy top-level functions survive as
deprecation shims over a default module session (:mod:`repro.session.shims`);
new backends and strategies plug in through the registries
(:mod:`repro.session.registry`) without edits to core modules.
"""

from repro.session.registry import (
    BackendFactory,
    StrategyFn,
    backend_names,
    register_backend,
    register_strategy,
    strategy_names,
)
from repro.session.requests import (
    CONTAINMENT_SEMANTICS,
    EVALUATION_SEMANTICS,
    ContainmentRequest,
    EvaluationRequest,
    MpiRequest,
    Outcome,
)
from repro.session.session import (
    Limits,
    Session,
    SessionSpec,
    current_session,
    default_session,
    use_session,
)

__all__ = [
    "BackendFactory",
    "CONTAINMENT_SEMANTICS",
    "ContainmentRequest",
    "EVALUATION_SEMANTICS",
    "EvaluationRequest",
    "Limits",
    "MpiRequest",
    "Outcome",
    "Session",
    "SessionSpec",
    "StrategyFn",
    "backend_names",
    "current_session",
    "default_session",
    "register_backend",
    "register_strategy",
    "strategy_names",
    "use_session",
]
