"""The pluggable extension registries, re-exported as one surface.

Third-party code extends the library without editing core modules:

* :func:`register_backend` adds a homomorphism-engine backend (a factory
  ``cache -> Backend``); the name becomes selectable in sessions, in
  ``use_backend`` and in the CLI's ``--engine-backend``.
* :func:`register_strategy` adds a bag-containment decision strategy; the
  name becomes selectable in sessions, in ``decide_bag_containment`` and in
  the CLI's ``--strategy``.

The canonical registries live with the code they extend
(:mod:`repro.engine.backends` and :mod:`repro.core.decision`); this module
is the session-level facade over both.
"""

from repro.core.decision import StrategyFn, register_strategy, strategy_names
from repro.engine.backends import BackendFactory, backend_names, register_backend

__all__ = [
    "BackendFactory",
    "StrategyFn",
    "backend_names",
    "register_backend",
    "register_strategy",
    "strategy_names",
]
