"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Specific subclasses distinguish the layer the
error originates from (relational substrate, query model, Diophantine layer,
containment decision procedures, parsing, and the command line interface).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class RelationalError(ReproError):
    """Errors raised by the relational substrate (terms, atoms, instances)."""


class ArityMismatchError(RelationalError):
    """An atom or fact was built with a number of terms different from the
    arity declared by its relation schema."""


class InvalidTermError(RelationalError):
    """A term of the wrong kind was supplied (e.g. a variable where a
    constant was required, or a non-term object altogether)."""


class SubstitutionError(RelationalError):
    """A substitution was applied or composed in an inconsistent way, for
    example when two bindings for the same variable conflict."""


class InstanceError(RelationalError):
    """A set or bag instance was constructed or updated inconsistently, for
    instance with a negative multiplicity."""


class QueryError(ReproError):
    """Errors raised by the query model."""


class NotProjectionFreeError(QueryError):
    """An operation that requires a projection-free conjunctive query was
    invoked on a query with existential variables."""


class UnificationError(QueryError):
    """A tuple of terms could not be unified with the free variables of a
    query (needed to ground a query on a probe tuple)."""


class ParseError(QueryError):
    """The datalog-style parser could not interpret its input."""


class DiophantineError(ReproError):
    """Errors raised by the Diophantine layer (monomials, polynomials, MPIs,
    linear systems)."""


class DimensionMismatchError(DiophantineError):
    """Two exponent vectors, or a vector and a system, have incompatible
    dimensions."""


class LinearSystemError(DiophantineError):
    """A homogeneous linear inequality system was malformed or a solver was
    asked for a witness of an infeasible system."""


class ContainmentError(ReproError):
    """Errors raised by the containment decision procedures."""


class EnumerationBudgetError(ContainmentError):
    """The bounded-guess strategy refused to enumerate: the candidate-vector
    count implied by the solution-size bound exceeds the caller's budget."""


class CertificateError(ContainmentError):
    """A counterexample certificate failed to verify, which indicates an
    internal inconsistency of the decision procedure."""


class WorkloadError(ReproError):
    """Errors raised by the workload generators."""


class VerifyError(ReproError):
    """Errors raised by the differential-verification subsystem (bad oracle
    or campaign configuration, malformed corpus files)."""


class SessionError(ReproError):
    """Errors raised by the session service facade (bad request shapes,
    unknown semantics, exhausted session limits)."""


class ParallelError(SessionError):
    """A sharded parallel execution failed inside a worker process.

    The message carries the worker-side exception's ``repr`` plus, when the
    worker could attribute the failure, the index and fingerprint of the
    failing request.  The worker's original exception (or, failing that, a
    carrier exception holding its formatted traceback) is chained as
    ``__cause__`` via ``raise ... from``."""


class DeadlineExceeded(SessionError):
    """A request exhausted its wall-clock budget (``Limits.deadline_ms``).

    Raised by the engine driver loops when the monotonic clock passes the
    request's deadline.  :class:`~repro.session.session.Session` converts it
    into an honest degraded :class:`~repro.session.requests.Outcome`
    (``verdict None``, ``degraded="deadline"``) instead of letting it escape.
    """


class FaultError(ReproError):
    """Errors raised by the fault-injection subsystem (:mod:`repro.faults`)."""


class FaultInjected(FaultError):
    """An injected fault fired (crash simulation at a registered site).

    Only ever raised while a :class:`~repro.faults.plan.FaultPlan` is armed;
    production code paths never construct it spontaneously."""


class TermIdOverflowError(ReproError):
    """A :class:`~repro.engine.interning.TermDictionary` ran out of id space.

    Packed signature keys shift each term id into its own fixed-width
    window, so ids at or beyond ``2**id_bits`` would silently collide with
    other ids inside one packed key.  The dictionary refuses to assign such
    an id instead; the attributes carry the computed bound.
    """

    def __init__(self, term: object, id_bits: int, capacity: int) -> None:
        super().__init__(
            f"term dictionary exhausted its {id_bits}-bit id space "
            f"({capacity} ids) interning {term!r}; packed signature keys "
            "would no longer be injective past this bound"
        )
        self.term = term
        self.id_bits = id_bits
        self.capacity = capacity


class AnalysisError(ReproError):
    """Errors raised by the static-analysis subsystem (:mod:`repro.analysis`)."""


class PlanVerificationError(AnalysisError):
    """A compiled plan or generated function failed soundness verification.

    ``violations`` carries the individual
    :class:`~repro.analysis.soundness.Violation` records the verifier
    established; the message summarises them.
    """

    def __init__(self, message: str, violations: tuple = ()) -> None:
        super().__init__(message)
        self.violations = tuple(violations)


class CliError(ReproError):
    """Errors raised by the command line interface."""
