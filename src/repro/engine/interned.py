"""The interned backend: integer-only plans, cost-ordered, over columnar data.

This is the third engine backend (after ``naive`` and ``indexed``).  It
answers the same three questions — ``iterate`` / ``count`` / ``exists`` —
but its compiled artefacts never touch a :class:`~repro.relational.terms.Term`
inside the inner loop:

* the target is interned once into an :class:`~repro.engine.interning.InternedTarget`
  (columnar ``(relation, arity)`` buckets of tuple-of-int rows, packed-key
  signature group indexes);
* every plan step is compiled down to integer column positions: constants
  become term ids, variables become dense *slot* numbers into a flat binding
  list, and candidate lookup keys are packed integers;
* join steps are **cost-ordered** by the observed per-signature selectivity
  of the target's built indexes (average candidates returned per probe),
  falling back to the static fail-first estimate only for signatures that
  have never been probed — the planner learns from the index statistics the
  executor accumulates.

The executor mirrors :mod:`repro.engine.executor` exactly (iterative loop,
explicit trail, early-exit ``exists``), so the three backends remain
solution-for-solution interchangeable; substitutions are materialised only
in ``iterate`` mode, by translating slot bindings back through the backend's
:class:`~repro.engine.interning.TermDictionary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.engine.executor import ExecutionStats, _Run
from repro.engine.interning import ID_BITS, InternedTarget, TermDictionary
from repro.engine.plan import greedy_order
from repro.faults.runtime import TICK_INTERVAL, tick_handle
from repro.exceptions import ReproError
from repro.relational.atoms import Atom
from repro.relational.substitutions import Substitution
from repro.relational.terms import Term, Variable

__all__ = [
    "InternedPlan",
    "InternedStep",
    "atom_signature",
    "compile_interned_plan",
    "compile_step",
    "interned_count",
    "interned_exists",
    "interned_iterate",
    "step_cost",
]

#: Selectivity counters: ``[probes, candidates returned]`` per signature.
SelectivityCounters = dict[tuple[str, int, tuple[int, ...]], list[int]]


class InternedStep:
    """One integer-compiled join step.

    ``group`` is the packed-key signature index the step probes (``None``
    for an empty signature, where ``bucket`` holds every row), ``key_ops``
    assembles the packed probe key — each op is one int: a slot number when
    non-negative, a constant term id encoded as ``-1 - id`` otherwise —
    and ``new_ops`` lists the ``(column, slot)`` pairs that bind fresh
    slots.  ``counter`` is the backend-level ``[probes, candidates]`` pair
    for the step's signature — the statistics stream the cost ordering
    feeds on.
    """

    __slots__ = ("atom", "group", "bucket", "key_ops", "new_ops", "counter")

    def __init__(
        self,
        atom: Atom,
        group: dict[int, tuple[tuple[int, ...], ...]] | None,
        bucket: tuple[tuple[int, ...], ...],
        key_ops: tuple[int, ...],
        new_ops: tuple[tuple[int, int], ...],
        counter: list[int],
    ) -> None:
        self.atom = atom
        self.group = group
        self.bucket = bucket
        self.key_ops = key_ops
        self.new_ops = new_ops
        self.counter = counter


@dataclass(frozen=True)
class InternedPlan:
    """A fully bound integer plan: steps, slot layout, and the fixed contract.

    Steps are partitioned at compile time into ``static_steps`` — pure
    membership filters whose keys depend only on constants and pre-fixed
    slots (at most one candidate each, signature covers the whole atom) —
    and the ``steps`` the search machinery actually backtracks over.
    Static filters are conjunctive preconditions independent of every
    search choice, so hoisting them preserves the solution set exactly
    while the hot path probes them in one flat scan.  Projection-free
    containment folds compile to static filters only.
    """

    steps: tuple[InternedStep, ...]
    static_steps: tuple[InternedStep, ...]
    slot_variables: tuple[Variable, ...]
    slot_of: dict[Variable, int]
    #: The id of each slot's own variable, for dropping identity bindings
    #: (``x -> x``) when materialising substitutions.
    self_ids: tuple[int, ...]
    fixed_variables: frozenset[Variable]
    source_variables: frozenset[Variable]
    #: ``(variable, slot)`` pairs of the compiled fixed variables, in slot
    #: order — the executor's fast path binds exactly these from the fixed
    #: mapping instead of re-deriving the layout per execution.
    fixed_slots: tuple[tuple[Variable, int], ...] = ()

    @property
    def num_steps(self) -> int:
        return len(self.static_steps) + len(self.steps)

    def describe(self) -> str:
        """The cost-ordered join sequence with per-step signatures."""
        lines = [
            f"interned plan: {len(self.static_steps)} static filters + "
            f"{len(self.steps)} search steps, {len(self.slot_variables)} slots"
        ]
        for label, steps in (("filter", self.static_steps), ("step", self.steps)):
            for index, step in enumerate(steps):
                signature = ", ".join(
                    str(position) for position, _ in _signature_of(step)
                ) or "none"
                lines.append(f"  {label} {index}: {step.atom}  [bound positions: {signature}]")
        return "\n".join(lines)

    def check_fixed(self, fixed: Mapping[Variable, Term]) -> None:
        """Reject execution-time bindings the plan was not compiled for.

        Same contract (and messages) as
        :meth:`repro.engine.plan.MatchPlan.check_fixed`.
        """
        unplanned = [
            variable
            for variable in fixed
            if variable not in self.fixed_variables and variable in self.source_variables
        ]
        if unplanned:
            raise ReproError(
                "plan was compiled without fixed bindings for "
                f"{sorted(str(v) for v in unplanned)}; recompile with the full fixed-variable set"
            )
        missing = [
            variable
            for variable in self.fixed_variables
            if variable in self.source_variables and variable not in fixed
        ]
        if missing:
            raise ReproError(
                "plan was compiled expecting fixed bindings for "
                f"{sorted(str(v) for v in missing)}; pass values for them at execution time"
            )


def _signature_of(step: InternedStep) -> list[tuple[int, int]]:
    """Recover ``(position, op)`` pairs for display (positions not stored hot)."""
    bound_positions = [
        position
        for position, term in enumerate(step.atom.terms)
        if not any(position == new_position for new_position, _ in step.new_ops)
    ]
    return list(zip(bound_positions, step.key_ops))


def atom_signature(atom: Atom, bound: set[Variable]) -> tuple[int, ...]:
    """The bound-position signature of *atom* under the current bound set."""
    return tuple(
        position
        for position, term in enumerate(atom.terms)
        if not isinstance(term, Variable) or term in bound
    )


def step_cost(
    target: InternedTarget,
    selectivity: SelectivityCounters,
    atom: Atom,
    bound: set[Variable],
    live: bool = False,
) -> tuple[float, int]:
    """Greedy scheduling cost of matching *atom* next.

    The primary component is the candidates-per-probe estimate of the
    atom's bound-position signature (see
    :meth:`~repro.engine.interning.InternedTarget.cost_estimate`); ties
    prefer more determined positions.  With ``live=True`` the running
    ``[probes, candidates]`` counters take precedence — the adaptive
    replanner's view of the world.  Compile time keeps ``live=False`` so a
    plan's order is a deterministic function of the target's built-index
    state, never of how often earlier executions probed it.
    """
    determined = atom_signature(atom, bound)
    counter = (
        selectivity.get((atom.relation, atom.arity, determined)) if live else None
    )
    cost = target.cost_estimate(atom.relation, atom.arity, determined, counter)
    return (cost, -len(determined))


def compile_step(
    dictionary: TermDictionary,
    target: InternedTarget,
    selectivity: SelectivityCounters,
    slot_of: Mapping[Variable, int],
    atom: Atom,
    bound: set[Variable],
) -> InternedStep:
    """Compile one atom into an :class:`InternedStep` under *bound*.

    Shared by the plan compiler and the generated backend's mid-execution
    replanner (which re-derives key/new ops for a re-ordered plan suffix).
    """
    key_ops: list[int] = []
    new_ops: list[tuple[int, int]] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term in bound:
                key_ops.append(slot_of[term])
            else:
                new_ops.append((position, slot_of[term]))
        else:
            # Constant ids ride in the same op stream, encoded below the
            # slot range as ``-1 - id`` so the executor needs one branch.
            key_ops.append(-1 - dictionary.intern(term))
    determined = atom_signature(atom, bound)
    if determined:
        group = target.group_index(atom.relation, atom.arity, determined)
        bucket: tuple[tuple[int, ...], ...] = ()
    else:
        group = None
        bucket = target.rows(atom.relation, atom.arity)
    counter = selectivity.setdefault((atom.relation, atom.arity, determined), [0, 0])
    return InternedStep(atom, group, bucket, tuple(key_ops), tuple(new_ops), counter)


def compile_interned_plan(
    dictionary: TermDictionary,
    target: InternedTarget,
    source_atoms: Iterable[Atom],
    fixed_variables: frozenset[Variable],
    selectivity: SelectivityCounters,
) -> InternedPlan:
    """Compile a cost-ordered integer plan against an interned target.

    The join order is greedy like the indexed compiler's, but the per-atom
    cost is the *observed* selectivity of the atom's bound-position
    signature whenever the target has already built (and therefore
    measured) that signature index: ``len(bucket) / groups`` is exactly the
    average number of candidates a probe returns.  Signatures never probed
    fall back to the static ``bucket / 4^determined`` guess.  Ties prefer
    more determined positions, then the original atom order — deterministic
    for a fixed statistics state.
    """
    source = tuple(dict.fromkeys(source_atoms))
    source_variables: set[Variable] = set()
    for atom in source:
        source_variables.update(atom.variables())

    slot_variables = tuple(sorted(source_variables | fixed_variables, key=lambda v: v.name))
    slot_of = {variable: slot for slot, variable in enumerate(slot_variables)}
    self_ids = tuple(dictionary.intern(variable) for variable in slot_variables)

    def estimate(atom: Atom, bound: set[Variable]) -> tuple[float, int]:
        return step_cost(target, selectivity, atom, bound)

    bound: set[Variable] = set(fixed_variables)
    steps: list[InternedStep] = []
    for atom, _ in greedy_order(source, bound, estimate):
        steps.append(compile_step(dictionary, target, selectivity, slot_of, atom, bound))

    # Hoist the pure preconditions: filter steps (no fresh slots) whose keys
    # read only constants and pre-fixed slots hold independently of every
    # search choice, so they run once, up front, in a flat scan.
    fixed_slot_numbers = {slot_of[variable] for variable in fixed_variables}
    static_steps = tuple(
        step
        for step in steps
        if not step.new_ops
        and all(op < 0 or op in fixed_slot_numbers for op in step.key_ops)
    )
    static_set = {id(step) for step in static_steps}
    dynamic_steps = tuple(step for step in steps if id(step) not in static_set)

    return InternedPlan(
        steps=dynamic_steps,
        static_steps=static_steps,
        slot_variables=slot_variables,
        slot_of=slot_of,
        self_ids=self_ids,
        fixed_variables=fixed_variables,
        source_variables=frozenset(source_variables),
        fixed_slots=tuple(
            (variable, slot)
            for slot, variable in enumerate(slot_variables)
            if variable in fixed_variables
        ),
    )


def _solutions(plan: InternedPlan, binding: list[int], run: _Run) -> Iterator[list[int]]:
    """Core integer loop: yields the *live* binding list once per solution.

    Mirrors :func:`repro.engine.executor._solutions` — same trail-based
    backtracking, same counter semantics — with all object-protocol costs
    replaced by list indexing and machine-int comparisons.
    """
    steps = plan.steps
    n = len(steps)

    candidates = 0
    try:
        # The static preconditions: a flat conjunction of probes, at most
        # one candidate each, independent of every search choice below.
        for step in plan.static_steps:
            group = step.group
            if group is None:
                rows = step.bucket
            else:
                key = 0
                for op in step.key_ops:
                    key = (key << ID_BITS) | (binding[op] if op >= 0 else -1 - op)
                rows = group.get(key, ())
            counter = step.counter
            counter[0] += 1
            counter[1] += len(rows)
            if not rows:
                return
            candidates += 1

        if n == 0:
            run.solutions += 1
            yield binding
            return

        # Per-depth state: an iterator for steps that bind fresh slots, the
        # raw rows tuple for filter steps (full signature, one candidate).
        iterators: list[object] = [()] * n
        consumed = [False] * n
        trail: list[list[int]] = [[]] * n
        no_slots: list[int] = []
        last = n - 1

        depth = 0
        entering = True
        # Deadline/fault tick: one falsy integer test per iteration when no
        # deadline and no fault plan are armed (tick is then None).
        tick = tick_handle()
        countdown = TICK_INTERVAL if tick is not None else 0
        while depth >= 0:
            if countdown:
                countdown -= 1
                if not countdown:
                    assert tick is not None
                    tick()
                    countdown = TICK_INTERVAL
            step = steps[depth]
            new_ops = step.new_ops
            if entering:
                group = step.group
                if group is None:
                    rows = step.bucket
                else:
                    key = 0
                    for op in step.key_ops:
                        key = (key << ID_BITS) | (binding[op] if op >= 0 else -1 - op)
                    rows = group.get(key, ())
                counter = step.counter
                counter[0] += 1
                counter[1] += len(rows)
                if new_ops:
                    iterators[depth] = iter(rows)
                else:
                    iterators[depth] = rows
                    consumed[depth] = False
                entering = False
            if not new_ops:
                # Filter step: one membership probe, nothing to enumerate.
                rows = iterators[depth]
                if consumed[depth] or not rows:
                    depth -= 1
                    if depth >= 0:
                        for slot in trail[depth]:
                            binding[slot] = -1
                    continue
                consumed[depth] = True
                candidates += 1
                if depth == last:
                    run.solutions += 1
                    yield binding
                    continue
                trail[depth] = no_slots
                depth += 1
                entering = True
                continue
            descended = False
            for row in iterators[depth]:  # type: ignore[union-attr]
                candidates += 1
                newly: list[int] = []
                ok = True
                for position, slot in new_ops:
                    value = row[position]
                    bound = binding[slot]
                    if bound < 0:
                        binding[slot] = value
                        newly.append(slot)
                    elif bound != value:
                        ok = False
                        break
                if not ok:
                    for slot in newly:
                        binding[slot] = -1
                    continue
                if depth == last:
                    run.solutions += 1
                    yield binding
                    for slot in newly:
                        binding[slot] = -1
                    continue
                trail[depth] = newly
                depth += 1
                entering = True
                descended = True
                break
            if not descended:
                depth -= 1
                if depth >= 0:
                    for slot in trail[depth]:
                        binding[slot] = -1
    finally:
        run.candidates += candidates


def _prepare(
    plan: InternedPlan,
    dictionary: TermDictionary,
    fixed: Mapping[Variable, Term] | None,
) -> tuple[list[int], dict[Variable, Term]]:
    """Initial slot bindings plus the fixed entries that have no slot.

    Fixed bindings for variables outside the plan's slot space (neither
    source nor compiled-fixed — the indexed executor simply carries them
    through) are returned separately so ``iterate`` can include them in the
    yielded substitutions, matching the reference semantics.
    """
    fixed = fixed or {}
    binding = [-1] * len(plan.slot_variables)
    intern = dictionary.intern
    fixed_slots = plan.fixed_slots
    if len(fixed) == len(fixed_slots):
        # Fast path: bind exactly the compiled fixed variables.  Equal size
        # plus every compiled variable present means the key sets coincide,
        # so no unplanned or missing binding is possible.
        try:
            for variable, slot in fixed_slots:
                binding[slot] = intern(fixed[variable])
            return binding, {}
        except KeyError:
            binding = [-1] * len(plan.slot_variables)
    # Slow path: extra bindings for non-source variables ride along in the
    # substitutions, genuinely illegal shapes raise.
    plan.check_fixed(fixed)
    extra: dict[Variable, Term] = {}
    slot_of = plan.slot_of
    for variable, term in fixed.items():
        slot = slot_of.get(variable)
        if slot is None:
            extra[variable] = term
        else:
            binding[slot] = intern(term)
    return binding, extra


def interned_iterate(
    plan: InternedPlan,
    dictionary: TermDictionary,
    fixed: Mapping[Variable, Term] | None = None,
    stats: ExecutionStats | None = None,
) -> Iterator[Substitution]:
    """Enumerate every homomorphism as a :class:`Substitution`."""
    binding, extra = _prepare(plan, dictionary, fixed)
    run = _Run()
    slot_variables = plan.slot_variables
    self_ids = plan.self_ids
    terms = dictionary.terms
    try:
        for solution in _solutions(plan, binding, run):
            mapping = dict(extra)
            # Unbound (-1) and identity (x -> x) slots are both dropped: the
            # former never happens once all steps ran, but fixed-only slots
            # of step-free plans stay at -1 unless pre-bound.
            for variable, self_id, image in zip(slot_variables, self_ids, solution):
                if image >= 0 and image != self_id:
                    mapping[variable] = terms[image]
            yield Substitution._trusted(mapping)
    finally:
        if stats is not None:
            stats.candidates_tried += run.candidates
            stats.solutions_found += run.solutions
            stats.executions += 1


def interned_count(
    plan: InternedPlan,
    dictionary: TermDictionary,
    fixed: Mapping[Variable, Term] | None = None,
    stats: ExecutionStats | None = None,
) -> int:
    """Count homomorphisms without materialising substitutions."""
    binding, _ = _prepare(plan, dictionary, fixed)
    run = _Run()
    for _ in _solutions(plan, binding, run):
        pass
    if stats is not None:
        stats.candidates_tried += run.candidates
        stats.solutions_found += run.solutions
        stats.executions += 1
    return run.solutions


def interned_exists(
    plan: InternedPlan,
    dictionary: TermDictionary,
    fixed: Mapping[Variable, Term] | None = None,
    stats: ExecutionStats | None = None,
) -> bool:
    """``True`` as soon as one homomorphism is found."""
    binding, _ = _prepare(plan, dictionary, fixed)
    run = _Run()
    found = next(_solutions(plan, binding, run), None) is not None
    if stats is not None:
        stats.candidates_tried += run.candidates
        stats.solutions_found += run.solutions
        stats.executions += 1
    return found
