"""Homomorphism backends: the naive reference and the compiled indexed engine.

A *backend* answers the three homomorphism questions over raw atom sets —
enumerate (``iterate``), ``count`` and ``exists`` — behind one small
interface, so every higher layer (evaluation, containment, encoding,
baselines, CLI) can switch implementations without code changes:

:class:`NaiveBackend`
    The original recursive backtracker, kept verbatim as the executable
    specification.  It rebuilds its relation index on every call and re-runs
    the candidate count over all remaining atoms at every search node; it is
    the semantics oracle the property tests compare against and the slow
    side of the A/B benchmarks.

:class:`IndexedBackend`
    Compiles a :class:`~repro.engine.plan.MatchPlan` (memoised through an
    :class:`~repro.engine.cache.EngineCache`) and runs the iterative
    executor.  ``count`` and ``exists`` results are additionally memoised,
    keyed by the full execution fingerprint.

The module also owns the process-wide backend registry and default selection
(`get_backend`, `set_default_backend`, `use_backend`), which the CLI exposes
as ``--engine-backend``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping

from repro.engine.cache import EngineCache
from repro.engine.executor import (
    ExecutionStats,
    execute_count,
    execute_exists,
    execute_iterate,
)
from repro.engine.fingerprints import atoms_fingerprint
from repro.engine.plan import JoinTemplate, MatchPlan
from repro.exceptions import ReproError
from repro.relational.atoms import Atom
from repro.relational.substitutions import Substitution
from repro.relational.terms import Term, Variable

__all__ = [
    "Backend",
    "NaiveBackend",
    "IndexedBackend",
    "BACKEND_NAMES",
    "get_backend",
    "get_default_backend",
    "set_default_backend",
    "use_backend",
    "default_cache",
]


class Backend:
    """Interface shared by all homomorphism backends."""

    name: str = "abstract"

    def iterate(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> Iterator[Substitution]:
        raise NotImplementedError

    def count(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> int:
        return sum(1 for _ in self.iterate(source_atoms, target_atoms, fixed))

    def exists(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> bool:
        return next(self.iterate(source_atoms, target_atoms, fixed), None) is not None


class NaiveBackend(Backend):
    """The recursive reference implementation (pre-engine semantics).

    Kept byte-for-byte faithful to the original
    ``repro.evaluation.homomorphisms.homomorphisms`` so that the indexed
    engine always has a trusted oracle: the target is re-indexed per call and
    the next atom is chosen greedily per node by re-counting candidates.
    """

    name = "naive"

    @staticmethod
    def _match_atom(
        atom: Atom, target: Atom, bindings: dict[Variable, Term]
    ) -> dict[Variable, Term] | None:
        if atom.relation != target.relation or atom.arity != target.arity:
            return None
        extended = dict(bindings)
        for source_term, target_term in zip(atom.terms, target.terms):
            if isinstance(source_term, Variable):
                bound = extended.get(source_term)
                if bound is None:
                    extended[source_term] = target_term
                elif bound != target_term:
                    return None
            elif source_term != target_term:
                return None
        return extended

    def iterate(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> Iterator[Substitution]:
        source = list(dict.fromkeys(source_atoms))
        target = list(dict.fromkeys(target_atoms))

        by_relation: dict[str, list[Atom]] = {}
        for atom in target:
            by_relation.setdefault(atom.relation, []).append(atom)

        initial: dict[Variable, Term] = dict(fixed or {})

        source_variables: set[Variable] = set()
        for atom in source:
            source_variables.update(atom.variables())

        match_atom = self._match_atom

        def candidate_count(atom: Atom, bindings: dict[Variable, Term]) -> int:
            count = 0
            for candidate in by_relation.get(atom.relation, ()):  # pragma: no branch
                if match_atom(atom, candidate, bindings) is not None:
                    count += 1
            return count

        def search(
            remaining: list[Atom], bindings: dict[Variable, Term]
        ) -> Iterator[dict[Variable, Term]]:
            if not remaining:
                yield bindings
                return
            # Fail-first: pick the atom with the fewest candidate images.
            best_index = min(
                range(len(remaining)), key=lambda index: candidate_count(remaining[index], bindings)
            )
            atom = remaining[best_index]
            rest = remaining[:best_index] + remaining[best_index + 1 :]
            for candidate in by_relation.get(atom.relation, ()):  # pragma: no branch
                extended = match_atom(atom, candidate, bindings)
                if extended is not None:
                    yield from search(rest, extended)

        for solution in search(source, initial):
            complete = dict(solution)
            for variable in source_variables:
                complete.setdefault(variable, variable)
            yield Substitution(complete)


class IndexedBackend(Backend):
    """The compiled plan/execute engine with plan and result memoisation."""

    name = "indexed"

    def __init__(self, cache: EngineCache | None = None, collect_stats: bool = True) -> None:
        self.cache = cache if cache is not None else EngineCache()
        self.stats = ExecutionStats() if collect_stats else None

    # ------------------------------------------------------------------ #
    # Plan access
    # ------------------------------------------------------------------ #
    def plan(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | Iterable[Variable] | None = None,
        template: JoinTemplate | None = None,
    ) -> MatchPlan:
        """The (memoised) compiled plan for a ``(source, target, fixed)`` triple."""
        fixed_variables = frozenset(fixed or ())
        return self.cache.plan(tuple(source_atoms), target_atoms, fixed_variables, template=template)

    # ------------------------------------------------------------------ #
    # Backend interface
    # ------------------------------------------------------------------ #
    def iterate(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> Iterator[Substitution]:
        plan = self.plan(source_atoms, target_atoms, fixed)
        return execute_iterate(plan, fixed, stats=self.stats)

    def count(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> int:
        plan = self.plan(source_atoms, target_atoms, fixed)
        key = self._result_key("count", plan, fixed)
        return self.cache.result(key, lambda: execute_count(plan, fixed, stats=self.stats))  # type: ignore[return-value]

    def exists(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> bool:
        plan = self.plan(source_atoms, target_atoms, fixed)
        key = self._result_key("exists", plan, fixed)
        return self.cache.result(key, lambda: execute_exists(plan, fixed, stats=self.stats))  # type: ignore[return-value]

    @staticmethod
    def _result_key(mode: str, plan: MatchPlan, fixed: Mapping[Variable, Term] | None) -> tuple:
        return (
            mode,
            atoms_fingerprint(plan.target_atoms),
            atoms_fingerprint(plan.source_atoms),
            frozenset((fixed or {}).items()),
        )


#: The canonical backend names, in CLI presentation order.
BACKEND_NAMES = ("naive", "indexed")

_REGISTRY: dict[str, Backend] = {
    "naive": NaiveBackend(),
    "indexed": IndexedBackend(),
}

_default_backend_name = "indexed"


def get_backend(name: str) -> Backend:
    """Look a backend up by name (``naive`` or ``indexed``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(f"unknown engine backend {name!r}; expected one of {BACKEND_NAMES}") from None


def get_default_backend() -> Backend:
    """The backend used when callers do not pass one explicitly."""
    return _REGISTRY[_default_backend_name]


def set_default_backend(name: str) -> str:
    """Select the process-wide default backend; returns the previous name."""
    global _default_backend_name
    if name not in _REGISTRY:
        raise ReproError(f"unknown engine backend {name!r}; expected one of {BACKEND_NAMES}")
    previous = _default_backend_name
    _default_backend_name = name
    return previous


@contextmanager
def use_backend(name: str):
    """Temporarily switch the default backend (restored on exit)."""
    previous = set_default_backend(name)
    try:
        yield get_backend(name)
    finally:
        set_default_backend(previous)


def default_cache() -> EngineCache:
    """The cache of the shared indexed backend (for stats and invalidation)."""
    backend = _REGISTRY["indexed"]
    assert isinstance(backend, IndexedBackend)
    return backend.cache
