"""Homomorphism backends: the naive reference and the compiled indexed engine.

A *backend* answers the three homomorphism questions over raw atom sets —
enumerate (``iterate``), ``count`` and ``exists`` — behind one small
interface, so every higher layer (evaluation, containment, encoding,
baselines, CLI) can switch implementations without code changes:

:class:`NaiveBackend`
    The original recursive backtracker, kept verbatim as the executable
    specification.  It rebuilds its relation index on every call and re-runs
    the candidate count over all remaining atoms at every search node; it is
    the semantics oracle the property tests compare against and the slow
    side of the A/B benchmarks.

:class:`IndexedBackend`
    Compiles a :class:`~repro.engine.plan.MatchPlan` (memoised through an
    :class:`~repro.engine.cache.EngineCache`) and runs the iterative
    executor.  ``count`` and ``exists`` results are additionally memoised,
    keyed by the full execution fingerprint.

The module also owns the backend *registry* — a name → factory mapping that
third-party backends join through :func:`register_backend` — and the
**context-local** default selection (`get_backend`, `set_default_backend`,
`use_backend`), which the CLI exposes as ``--engine-backend``.  Selection is
backed by :mod:`contextvars`, so two threads (or two asyncio tasks) can run
different backends concurrently without leaking state into each other; a
:class:`repro.session.Session` additionally installs a *provider* so that
name lookups made while the session is active resolve to the session's own
backend instances (and therefore its own cache).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterable, Iterator, Mapping

from repro.analysis import hooks as _verify_hooks
from repro.engine.cache import EngineCache
from repro.engine.executor import (
    ExecutionStats,
    execute_count,
    execute_exists,
    execute_iterate,
)
from repro.engine.fingerprints import atoms_fingerprint
from repro.engine.generated import (
    DEFAULT_REPLAN_INTERVAL,
    DEFAULT_REPLAN_THRESHOLD,
    GeneratedPlan,
    generated_count,
    generated_exists,
    generated_iterate,
)
from repro.engine.interned import (
    InternedPlan,
    compile_interned_plan,
    interned_count,
    interned_exists,
    interned_iterate,
)
from repro.engine.interning import InternedTarget, TermDictionary
from repro.engine.plan import JoinTemplate, MatchPlan
from repro.exceptions import ReproError
from repro.relational.atoms import Atom
from repro.relational.substitutions import Substitution
from repro.relational.terms import Term, Variable

__all__ = [
    "Backend",
    "NaiveBackend",
    "IndexedBackend",
    "InternedBackend",
    "GeneratedBackend",
    "BACKEND_NAMES",
    "BackendFactory",
    "backend_names",
    "create_backend",
    "register_backend",
    "get_backend",
    "get_default_backend",
    "set_default_backend",
    "use_backend",
    "default_cache",
]


class Backend:
    """Interface shared by all homomorphism backends."""

    name: str = "abstract"

    def iterate(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> Iterator[Substitution]:
        raise NotImplementedError

    def count(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> int:
        return sum(1 for _ in self.iterate(source_atoms, target_atoms, fixed))

    def exists(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> bool:
        return next(self.iterate(source_atoms, target_atoms, fixed), None) is not None


def _scalar_result_key(
    backend_name: str,
    mode: str,
    source: Iterable[Atom],
    target: Iterable[Atom],
    fixed: Mapping[Variable, Term] | None,
) -> tuple:
    """The result-layer memo key for a ``count``/``exists`` execution.

    One shared layout for every backend: element 1 **must** be the target
    fingerprint — :meth:`EngineCache.invalidate`'s result-layer drop
    predicate matches on ``key[1]``.  The backend name is part of the key
    so that two backends sharing one cache (a session's) never serve each
    other's memoised results — the differential oracle's cross-backend
    comparisons must compare independent computations, not one computation
    twice.
    """
    return (
        "count-exists",
        atoms_fingerprint(target),
        atoms_fingerprint(source),
        frozenset((fixed or {}).items()),
        mode,
        backend_name,
    )


class NaiveBackend(Backend):
    """The recursive reference implementation (pre-engine semantics).

    Kept byte-for-byte faithful to the original
    ``repro.evaluation.homomorphisms.homomorphisms`` so that the indexed
    engine always has a trusted oracle: the target is re-indexed per call and
    the next atom is chosen greedily per node by re-counting candidates.
    """

    name = "naive"

    @staticmethod
    def _match_atom(
        atom: Atom, target: Atom, bindings: dict[Variable, Term]
    ) -> dict[Variable, Term] | None:
        if atom.relation != target.relation or atom.arity != target.arity:
            return None
        extended = dict(bindings)
        for source_term, target_term in zip(atom.terms, target.terms):
            if isinstance(source_term, Variable):
                bound = extended.get(source_term)
                if bound is None:
                    extended[source_term] = target_term
                elif bound != target_term:
                    return None
            elif source_term != target_term:
                return None
        return extended

    def iterate(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> Iterator[Substitution]:
        source = list(dict.fromkeys(source_atoms))
        target = list(dict.fromkeys(target_atoms))

        by_relation: dict[str, list[Atom]] = {}
        for atom in target:
            by_relation.setdefault(atom.relation, []).append(atom)

        initial: dict[Variable, Term] = dict(fixed or {})

        source_variables: set[Variable] = set()
        for atom in source:
            source_variables.update(atom.variables())

        match_atom = self._match_atom

        def candidate_count(atom: Atom, bindings: dict[Variable, Term]) -> int:
            count = 0
            for candidate in by_relation.get(atom.relation, ()):  # pragma: no branch
                if match_atom(atom, candidate, bindings) is not None:
                    count += 1
            return count

        def search(
            remaining: list[Atom], bindings: dict[Variable, Term]
        ) -> Iterator[dict[Variable, Term]]:
            if not remaining:
                yield bindings
                return
            # Fail-first: pick the atom with the fewest candidate images.
            best_index = min(
                range(len(remaining)), key=lambda index: candidate_count(remaining[index], bindings)
            )
            atom = remaining[best_index]
            rest = remaining[:best_index] + remaining[best_index + 1 :]
            for candidate in by_relation.get(atom.relation, ()):  # pragma: no branch
                extended = match_atom(atom, candidate, bindings)
                if extended is not None:
                    yield from search(rest, extended)

        for solution in search(source, initial):
            complete = dict(solution)
            for variable in source_variables:
                complete.setdefault(variable, variable)
            yield Substitution(complete)


class IndexedBackend(Backend):
    """The compiled plan/execute engine with plan and result memoisation."""

    name = "indexed"

    def __init__(self, cache: EngineCache | None = None, collect_stats: bool = True) -> None:
        self.cache = cache if cache is not None else EngineCache()
        self.stats = ExecutionStats() if collect_stats else None

    # ------------------------------------------------------------------ #
    # Plan access
    # ------------------------------------------------------------------ #
    def plan(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | Iterable[Variable] | None = None,
        template: JoinTemplate | None = None,
    ) -> MatchPlan:
        """The (memoised) compiled plan for a ``(source, target, fixed)`` triple."""
        fixed_variables = frozenset(fixed or ())
        source = tuple(source_atoms)
        plan = self.cache.plan(source, target_atoms, fixed_variables, template=template)
        if _verify_hooks.verification_enabled():
            _verify_hooks.check_plan(plan, source_atoms=source, fixed_variables=fixed_variables)
        return plan

    # ------------------------------------------------------------------ #
    # Backend interface
    # ------------------------------------------------------------------ #
    def iterate(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> Iterator[Substitution]:
        plan = self.plan(source_atoms, target_atoms, fixed)
        return execute_iterate(plan, fixed, stats=self.stats)

    def count(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> int:
        plan = self.plan(source_atoms, target_atoms, fixed)
        key = self._result_key("count", plan, fixed)
        return self.cache.result(key, lambda: execute_count(plan, fixed, stats=self.stats))  # type: ignore[return-value]

    def exists(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> bool:
        plan = self.plan(source_atoms, target_atoms, fixed)
        key = self._result_key("exists", plan, fixed)
        return self.cache.result(key, lambda: execute_exists(plan, fixed, stats=self.stats))  # type: ignore[return-value]

    @staticmethod
    def _result_key(mode: str, plan: MatchPlan, fixed: Mapping[Variable, Term] | None) -> tuple:
        return _scalar_result_key("indexed", mode, plan.source_atoms, plan.target_atoms, fixed)


class InternedBackend(Backend):
    """The integer data plane: interned terms, columnar rows, packed keys.

    Everything the inner loop touches is an ``int``: constants and
    variables are interned to dense ids through a per-backend
    :class:`~repro.engine.interning.TermDictionary`, targets are stored as
    columnar per-relation buckets of tuple-of-int rows, signature indexes
    key on packed integer keys, and plan steps address a flat slot-binding
    list instead of a variable dictionary.  Join orders are chosen by the
    *observed* per-signature selectivity accumulated in ``selectivity``
    (see :func:`~repro.engine.interned.compile_interned_plan`).

    Compiled artefacts live in the shared :class:`EngineCache` — interned
    targets in the index layer, interned plans in the plan layer, scalar
    results in the result layer — tagged with the dictionary's serial so an
    entry can never outlive the id space it was compiled against.
    """

    name = "interned"

    #: Tag mixed into plan-layer cache keys; subclasses that compile their
    #: own plan flavour (the generated backend) override it so the two plan
    #: kinds never collide inside one shared session cache.
    _plan_tag = "interned"

    def __init__(self, cache: EngineCache | None = None, collect_stats: bool = True) -> None:
        self.cache = cache if cache is not None else EngineCache()
        self.stats = ExecutionStats() if collect_stats else None
        self.dictionary = TermDictionary()
        #: Per-signature ``[probes, candidates returned]`` counters, keyed by
        #: ``(relation, arity, signature)`` — the statistics the planner's
        #: cost ordering reads and ``--engine-stats`` prints.
        self.selectivity: dict[tuple[str, int, tuple[int, ...]], list[int]] = {}
        #: Identity-keyed plan memo: callers that re-execute with the *same*
        #: atom containers (cached ``body_atoms()`` tuples, ``facts``
        #: frozensets) skip fingerprinting entirely.  Values hold strong
        #: references to the keyed containers, so an id can never be
        #: recycled while its entry is alive; cleared wholesale when full.
        self._plan_memo: dict[tuple, tuple[object, object, InternedPlan]] = {}

    # ------------------------------------------------------------------ #
    # Compiled artefact access
    # ------------------------------------------------------------------ #
    def target(self, target_atoms: Iterable[Atom]) -> InternedTarget:
        """The (cached) interned image of a target atom set."""
        target = tuple(target_atoms)
        key = (atoms_fingerprint(target), "interned", self.dictionary.serial)
        return self.cache.index_entry(  # type: ignore[return-value]
            key, lambda: InternedTarget(self.dictionary, target)
        )

    #: Identity-memo bound: cleared wholesale beyond this (entries rebuild
    #: cheaply from the fingerprint-keyed plan layer underneath).
    _PLAN_MEMO_LIMIT = 1024

    def plan(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | Iterable[Variable] | None = None,
    ) -> InternedPlan:
        """The (cached) cost-ordered integer plan for a ``(source, target, fixed)`` triple.

        Lookup is two-tier: an identity memo keyed on the container ids
        (hit when callers pass stable tuples/frozensets, as the cached
        query/instance accessors do), backed by the shared cache's
        fingerprint-keyed plan layer, which unifies logically equal triples
        arriving under fresh identities.
        """
        fixed_variables = frozenset(fixed or ())
        ident = (id(source_atoms), id(target_atoms), fixed_variables)
        memo = self._plan_memo
        entry = memo.get(ident)
        if entry is not None and entry[0] is source_atoms and entry[1] is target_atoms:
            if _verify_hooks.verification_enabled():
                _verify_hooks.check_plan(
                    entry[2],
                    source_atoms=tuple(entry[0]),
                    fixed_variables=fixed_variables,
                    dictionary=self.dictionary,
                )
            return entry[2]

        source = tuple(source_atoms)
        target = tuple(target_atoms)
        key = (
            atoms_fingerprint(source),
            atoms_fingerprint(target),
            fixed_variables,
            self._plan_tag,
            self.dictionary.serial,
        )

        def build():
            return self._compile_plan(source, target, fixed_variables)

        plan = self.cache.plan_entry(key, build)  # type: ignore[assignment]
        if len(memo) >= self._PLAN_MEMO_LIMIT:
            memo.clear()
        memo[ident] = (source_atoms, target_atoms, plan)  # type: ignore[arg-type]
        if _verify_hooks.verification_enabled():
            _verify_hooks.check_plan(
                plan,
                source_atoms=source,
                fixed_variables=fixed_variables,
                dictionary=self.dictionary,
            )
        return plan  # type: ignore[return-value]

    def _compile_plan(
        self,
        source: tuple[Atom, ...],
        target: tuple[Atom, ...],
        fixed_variables: frozenset[Variable],
    ):
        """Build the plan-layer artefact; subclasses wrap or replace it."""
        return compile_interned_plan(
            self.dictionary, self.target(target), source, fixed_variables, self.selectivity
        )

    # ------------------------------------------------------------------ #
    # Backend interface
    # ------------------------------------------------------------------ #
    def iterate(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> Iterator[Substitution]:
        plan = self.plan(source_atoms, target_atoms, fixed)
        return interned_iterate(plan, self.dictionary, fixed, stats=self.stats)

    def count(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> int:
        source = tuple(source_atoms)
        target = tuple(target_atoms)
        key = self._result_key("count", source, target, fixed)
        return self.cache.result(  # type: ignore[return-value]
            key,
            lambda: interned_count(
                self.plan(source, target, fixed), self.dictionary, fixed, stats=self.stats
            ),
        )

    def exists(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> bool:
        source = tuple(source_atoms)
        target = tuple(target_atoms)
        key = self._result_key("exists", source, target, fixed)
        return self.cache.result(  # type: ignore[return-value]
            key,
            lambda: interned_exists(
                self.plan(source, target, fixed), self.dictionary, fixed, stats=self.stats
            ),
        )

    @classmethod
    def _result_key(
        cls,
        mode: str,
        source: tuple[Atom, ...],
        target: tuple[Atom, ...],
        fixed: Mapping[Variable, Term] | None,
    ) -> tuple:
        return _scalar_result_key(cls.name, mode, source, target, fixed)

    # ------------------------------------------------------------------ #
    # Selectivity statistics
    # ------------------------------------------------------------------ #
    def describe_selectivity(self, top: int = 10) -> str:
        """The busiest per-signature selectivity counters, one line each.

        ``avg`` is candidates returned per probe — the observed selectivity
        the planner orders join steps by (lower probes earlier).
        """
        if not self.selectivity:
            return "no signature probes recorded"
        entries = sorted(self.selectivity.items(), key=lambda item: -item[1][0])[:top]
        lines = [f"{'signature':<24} {'probes':>8} {'candidates':>11} {'avg':>7}"]
        for (relation, arity, signature), (probes, candidates) in entries:
            positions = ",".join(str(position) for position in signature) or "-"
            average = candidates / probes if probes else 0.0
            lines.append(
                f"{relation}/{arity}[{positions}]".ljust(24)
                + f" {probes:>8} {candidates:>11} {average:>7.2f}"
            )
        return "\n".join(lines)


class GeneratedBackend(InternedBackend):
    """Closure-compiled execution over the interned data plane.

    Shares everything structural with :class:`InternedBackend` — the term
    dictionary, the columnar targets, the selectivity counters, the
    cost-ordered planner — but wraps each compiled plan in a
    :class:`~repro.engine.generated.GeneratedPlan`: the plan suffix is
    emitted as one specialized nested-loop function per execution mode (no
    per-row step dispatch, no trail), and the driver samples the live
    selectivity counters every ``replan_interval`` top-level rows,
    re-ordering and recompiling the unexecuted suffix when observations
    diverge from the planned estimates by ``replan_threshold`` (a ratio).
    Replanning permutes enumeration order only, so all four backends stay
    verdict-, certificate- and count-identical.

    Plans hold compiled closures, which are deliberately *not* picklable —
    parallel workers rebuild backends by name from a
    :class:`~repro.session.SessionSpec` and regenerate the closures from
    their own dictionaries, which is the only sound thing to do anyway
    (term ids are per-process).
    """

    name = "generated"
    _plan_tag = "generated"

    def __init__(
        self,
        cache: EngineCache | None = None,
        collect_stats: bool = True,
        replan_interval: int = DEFAULT_REPLAN_INTERVAL,
        replan_threshold: float = DEFAULT_REPLAN_THRESHOLD,
    ) -> None:
        super().__init__(cache=cache, collect_stats=collect_stats)
        self.replan_interval = int(replan_interval)
        self.replan_threshold = float(replan_threshold)
        #: Shared ``[checks, replans]`` counters, aggregated across every
        #: plan this backend compiled — what ``--engine-stats`` reports.
        self.replan_events: list[int] = [0, 0]

    def _compile_plan(
        self,
        source: tuple[Atom, ...],
        target: tuple[Atom, ...],
        fixed_variables: frozenset[Variable],
    ) -> GeneratedPlan:
        interned_target = self.target(target)
        base = compile_interned_plan(
            self.dictionary, interned_target, source, fixed_variables, self.selectivity
        )
        return GeneratedPlan(
            base,
            self.dictionary,
            interned_target,
            self.selectivity,
            replan_interval=self.replan_interval,
            replan_threshold=self.replan_threshold,
            events=self.replan_events,
        )

    # ------------------------------------------------------------------ #
    # Backend interface
    # ------------------------------------------------------------------ #
    def iterate(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> Iterator[Substitution]:
        plan = self.plan(source_atoms, target_atoms, fixed)
        return generated_iterate(plan, self.dictionary, fixed, stats=self.stats)

    def count(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> int:
        source = tuple(source_atoms)
        target = tuple(target_atoms)
        key = self._result_key("count", source, target, fixed)
        return self.cache.result(  # type: ignore[return-value]
            key,
            lambda: generated_count(
                self.plan(source, target, fixed), self.dictionary, fixed, stats=self.stats
            ),
        )

    def exists(
        self,
        source_atoms: Iterable[Atom],
        target_atoms: Iterable[Atom],
        fixed: Mapping[Variable, Term] | None = None,
    ) -> bool:
        source = tuple(source_atoms)
        target = tuple(target_atoms)
        key = self._result_key("exists", source, target, fixed)
        return self.cache.result(  # type: ignore[return-value]
            key,
            lambda: generated_exists(
                self.plan(source, target, fixed), self.dictionary, fixed, stats=self.stats
            ),
        )

    # ------------------------------------------------------------------ #
    # Replanning statistics
    # ------------------------------------------------------------------ #
    def describe_replanning(self) -> str:
        """One line of replan activity for ``--engine-stats``."""
        checks, replans = self.replan_events
        return (
            f"replan checks: {checks}, replans triggered: {replans} "
            f"(interval {self.replan_interval} rows, threshold {self.replan_threshold:g}x)"
        )


#: The canonical built-in backend names, in CLI presentation order.
BACKEND_NAMES = ("naive", "indexed", "interned", "generated")

#: A backend factory: given an (optional) cache to share, build an instance.
#: Factories that need no cache (like the naive reference) ignore the argument.
BackendFactory = Callable[[EngineCache | None], Backend]

_FACTORIES: dict[str, BackendFactory] = {
    "naive": lambda cache: NaiveBackend(),
    "indexed": lambda cache: IndexedBackend(cache=cache),
    "interned": lambda cache: InternedBackend(cache=cache),
    "generated": lambda cache: GeneratedBackend(cache=cache),
}

#: Lazily built process-wide shared instances (the legacy, session-less path).
_SHARED: dict[str, Backend] = {}
_SHARED_LOCK = threading.Lock()

#: The backend explicitly selected in the *current context* (``use_backend``,
#: ``set_default_backend``, or an active session), or ``None`` for "indexed".
_ACTIVE_BACKEND: ContextVar[Backend | None] = ContextVar("repro_active_backend", default=None)

#: Name → instance resolver installed by an active session so that lookups
#: (including ``use_backend`` switches *inside* the session) resolve to the
#: session's own instances rather than the process-wide shared ones.
_ACTIVE_PROVIDER: ContextVar[Callable[[str], Backend] | None] = ContextVar(
    "repro_backend_provider", default=None
)


def backend_names() -> tuple[str, ...]:
    """Every registered backend name (built-ins first, then plugins)."""
    return tuple(_FACTORIES)


def register_backend(name: str, factory: BackendFactory, replace: bool = False) -> None:
    """Register a backend factory under *name*.

    Third-party backends join the registry without touching core modules:
    once registered, the name works everywhere a built-in does — sessions,
    ``use_backend``, the differential oracle and the CLI.  Re-registering an
    existing name requires ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ReproError("a backend name must be a non-empty string")
    if name in _FACTORIES and not replace:
        raise ReproError(f"backend {name!r} is already registered (pass replace=True to override)")
    _FACTORIES[name] = factory
    with _SHARED_LOCK:
        _SHARED.pop(name, None)


def create_backend(name: str, cache: EngineCache | None = None) -> Backend:
    """Build a fresh backend instance, optionally sharing *cache*."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ReproError(
            f"unknown engine backend {name!r}; expected one of {backend_names()}"
        ) from None
    return factory(cache)


def _shared_instance(name: str) -> Backend:
    if name not in _FACTORIES:
        raise ReproError(f"unknown engine backend {name!r}; expected one of {backend_names()}")
    instance = _SHARED.get(name)
    if instance is None:
        # Locked: concurrent first lookups must agree on one shared instance
        # (and, for the indexed backend, one shared cache).
        with _SHARED_LOCK:
            instance = _SHARED.get(name)
            if instance is None:
                instance = create_backend(name)
                _SHARED[name] = instance
    return instance


def get_backend(name: str) -> Backend:
    """Look a backend up by name, resolving through the active session if any."""
    provider = _ACTIVE_PROVIDER.get()
    if provider is not None:
        return provider(name)
    return _shared_instance(name)


def get_default_backend() -> Backend:
    """The backend used when callers do not pass one explicitly.

    Resolution is context-local: an explicit :func:`use_backend` /
    :func:`set_default_backend` selection in this context wins, then an
    active session's backend, then the process-wide shared ``indexed``
    instance.  New threads start from the base default, so a selection made
    in one thread never leaks into another.
    """
    active = _ACTIVE_BACKEND.get()
    if active is not None:
        return active
    return get_backend("indexed")


def set_default_backend(name: str) -> str:
    """Select the default backend for the current context; returns the previous name."""
    previous = get_default_backend().name
    _ACTIVE_BACKEND.set(get_backend(name))
    return previous


@contextmanager
def use_backend(name: str):
    """Temporarily switch the default backend (restored on exit).

    The switch is scoped to the current context (thread / asyncio task), so
    concurrent workloads can hold different backends at the same time.
    """
    backend = get_backend(name)
    token = _ACTIVE_BACKEND.set(backend)
    try:
        yield backend
    finally:
        _ACTIVE_BACKEND.reset(token)


def default_cache() -> EngineCache:
    """The cache of the current indexed backend (for stats and invalidation).

    Inside an active session this is the *session's* cache; otherwise the
    process-wide shared indexed backend's cache.
    """
    backend = get_backend("indexed")
    if not isinstance(backend, IndexedBackend):
        raise ReproError("the 'indexed' backend registration does not produce an IndexedBackend")
    return backend.cache
