"""The persistent cache tier: compiled plans and memos that survive restarts.

PR 1/5 made compiled plans worth 7-112x, but every process rebuilt them from
scratch: a service restart, a parallel worker, or the next CI corpus replay
always started cold.  :class:`PersistentCache` is a disk-backed tier (stdlib
``sqlite3`` in WAL mode) that an :class:`~repro.engine.cache.EngineCache`
consults *behind* its in-memory LRU layers: an in-memory miss falls through
to the store, and a freshly built entry is written back — so plans,
``count``/``exists`` result memos and whole session decision verdicts warm
across processes, workers and runs.

**Key discipline.**  Rows are keyed by the four-part fingerprint the ISSUE
and ROADMAP demand — ``(structural key digest, backend name, limits
fingerprint, schema version)``:

* the structural digest is :func:`~repro.engine.fingerprints.persistent_digest`
  over the very same key structure the in-memory layer uses, canonically
  serialized (sorted containers, named fields, no ``hash()``), so it is
  identical in every process regardless of ``PYTHONHASHSEED``;
* the backend name and the limits fingerprint come from the owning
  session's configuration (a different backend or a different enumeration
  budget must never serve the other's rows);
* :data:`SCHEMA_VERSION` stamps the pickled-value layout.  **Bump it
  whenever the pickled shape of any persisted value changes** (plan layout,
  decision-result fields, certificate representation): old rows then
  silently miss instead of unpickling into the wrong shape.

Any component mismatch is a miss — never a wrong answer.

**What persists.**  Only entries whose keys canonically serialize *and*
whose values are process-independent: classic :class:`MatchPlan` objects
(the ``(source, target, fixed)`` frozenset-keyed plan layer), backend-tagged
``count``/``exists`` scalar memos, and session decision memos.  Entries
keyed by process-local state — interned/generated plans carry a term
dictionary serial, target indexes are cheap per-process rebuilds — are
skipped, not persisted unsoundly.

**Corruption tolerance.**  Every read path — connect, query, unpickle — is
wrapped: a torn write, a truncated file, a garbage blob or a concurrent
writer's lock degrades to a *counted* miss (``stats.errors``) and execution
falls through to a fresh computation.  The store can be deleted at any
moment; nothing above it can tell except by speed.

**Concurrency.**  WAL mode plus short ``BEGIN IMMEDIATE`` write
transactions let parallel workers share one store: readers never block on
the writer, writers queue behind a busy timeout, and a worker that loses
the race simply recomputes.  One connection per :class:`PersistentCache`,
guarded by a lock, so a session can be driven from multiple threads.

**Resilience.**  Transient ``SQLITE_BUSY``-class failures are retried a
bounded number of times with jittered exponential backoff
(``stats.retries``); persistent failures trip a :class:`CircuitBreaker`
that short-circuits the store for a cooldown period
(``stats.breaker_skipped`` counts the skipped round-trips) while the
session keeps serving from the in-memory tier.  A half-open probe
re-enables the store after the cooldown.  The named fault-injection sites
``persist.connect`` / ``persist.load`` / ``persist.store``
(:mod:`repro.faults`) exercise exactly these paths deterministically.
"""

from __future__ import annotations

import os
import pickle
import random
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Hashable, TypeVar

from repro.engine.fingerprints import UnpersistableKeyError, persistent_digest
from repro.faults.plan import check as _fault_check

__all__ = ["MISS", "CircuitBreaker", "PersistStats", "PersistentCache", "SCHEMA_VERSION"]

_T = TypeVar("_T")


class _Miss:
    """The sentinel a failed/ineligible persistent lookup returns.

    A dedicated type (rather than ``None``) because ``None`` is a perfectly
    valid cached value.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MISS"


MISS = _Miss()

#: The pickled-value layout version.  Bump on ANY change to the pickled
#: shape of persisted values (MatchPlan layout, decision-result fields,
#: certificate representation); old rows then miss instead of loading the
#: wrong shape.  The rule is documented in README "Warm starts".
SCHEMA_VERSION = 1


@dataclass
class PersistStats:
    """Counters for the persistent tier (separate from the LRU layers').

    ``errors`` counts every corruption-tolerant degradation: failed
    connects, locked/failed transactions, torn blobs, unpickle failures.
    ``skipped`` counts store attempts for entries that cannot soundly
    persist (unpicklable values).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    skipped: int = 0
    invalidated: int = 0
    retries: int = 0
    breaker_skipped: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses ({self.hit_rate:.0%}), "
            f"{self.stores} stored, {self.errors} errors, "
            f"{self.skipped} skipped, {self.invalidated} invalidated, "
            f"{self.retries} retries, {self.breaker_skipped} breaker-skipped"
        )


#: Bounded retries for transient (SQLITE_BUSY-class) failures, with
#: jittered exponential backoff starting at ``_RETRY_BASE_DELAY`` seconds.
_RETRY_LIMIT = 3
_RETRY_BASE_DELAY = 0.002


def _is_transient(error: sqlite3.OperationalError) -> bool:
    """Is this a busy/locked-class failure worth retrying?"""
    text = str(error).lower()
    return "locked" in text or "busy" in text


class CircuitBreaker:
    """A closed → open → half-open breaker guarding the persist tier.

    ``record_failure`` after ``threshold`` *consecutive* failures (or any
    half-open probe failure) opens the breaker; while open, :meth:`allow`
    short-circuits store round-trips until ``cooldown`` seconds elapse,
    then admits one half-open probe whose success closes the breaker.
    State transitions are appended to :attr:`history` (bounded) with
    monotonic timestamps for reporting.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 1.0) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be positive, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"breaker cooldown must be non-negative, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.consecutive_failures = 0
        self.opens = 0
        self.half_opens = 0
        self.closes = 0
        self._opened_at = 0.0
        self.history: list[tuple[str, float]] = []

    @property
    def transitions(self) -> tuple[str, ...]:
        """The state-transition sequence (no timestamps), oldest first."""
        return tuple(state for state, _ in self.history)

    def allow(self) -> bool:
        """May the caller attempt a store round-trip right now?"""
        if self.state == "open":
            if time.monotonic() - self._opened_at < self.cooldown:
                return False
            self._transition("half-open")
            self.half_opens += 1
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != "closed":
            self._transition("closed")
            self.closes += 1

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == "half-open" or (
            self.state == "closed" and self.consecutive_failures >= self.threshold
        ):
            self._transition("open")
            self.opens += 1
        if self.state == "open":
            self._opened_at = time.monotonic()

    def _transition(self, state: str) -> None:
        self.state = state
        self.history.append((state, time.monotonic()))
        del self.history[:-64]

    def describe(self) -> str:
        return (
            f"breaker {self.state} ({self.opens} opens, "
            f"{self.half_opens} half-opens, {self.closes} closes)"
        )


_CREATE_TABLE = """
CREATE TABLE IF NOT EXISTS entries (
    layer    TEXT    NOT NULL,
    key      TEXT    NOT NULL,
    backend  TEXT    NOT NULL,
    limits   TEXT    NOT NULL,
    schema   INTEGER NOT NULL,
    target   TEXT    NOT NULL DEFAULT '',
    value    BLOB    NOT NULL,
    created  REAL    NOT NULL,
    accessed REAL    NOT NULL DEFAULT 0,
    PRIMARY KEY (layer, key, backend, limits, schema)
)
"""

_CREATE_TARGET_INDEX = "CREATE INDEX IF NOT EXISTS entries_target ON entries(target)"

#: Migration for stores created before the ``accessed`` column existed
#: (pre-eviction schema).  Rows from such stores start with their creation
#: time as the access time, which is the best information available.
_ADD_ACCESSED = "ALTER TABLE entries ADD COLUMN accessed REAL NOT NULL DEFAULT 0"
_BACKFILL_ACCESSED = "UPDATE entries SET accessed = created WHERE accessed = 0"


class PersistentCache:
    """A disk-backed cache tier layered behind an :class:`EngineCache`.

    Parameters
    ----------
    path:
        The SQLite store file (created, with parent directories, on first
        use).  Many processes may share one path.
    backend:
        The owning session's backend name — part of every row key.
    limits_fingerprint:
        The owning session's limits digest — part of every row key.  Use
        :func:`~repro.engine.fingerprints.persistent_digest` on the
        session's :class:`~repro.session.Limits`.
    schema_version:
        Overridable for tests; defaults to :data:`SCHEMA_VERSION`.
    breaker_threshold / breaker_cooldown:
        Circuit-breaker tuning (consecutive failures to open; seconds
        before the half-open probe).  The defaults suit production; tests
        and chaos campaigns shrink them.
    """

    def __init__(
        self,
        path: str | Path,
        backend: str = "indexed",
        limits_fingerprint: str = "",
        schema_version: int = SCHEMA_VERSION,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
    ) -> None:
        self.path = Path(path)
        self.backend = backend
        self.limits_fingerprint = limits_fingerprint
        self.schema_version = int(schema_version)
        self.stats = PersistStats()
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown)
        # Jitter decorrelates concurrent processes' backoff schedules; it
        # only shapes sleep durations, never any persisted value.
        self._jitter = random.Random(os.getpid())
        self._lock = threading.Lock()
        self._connection: sqlite3.Connection | None = None
        self._dead = False
        self._open()

    # ------------------------------------------------------------------ #
    # Resilience helpers: injection, retries
    # ------------------------------------------------------------------ #
    @staticmethod
    def _inject(site: str) -> None:
        """Apply an armed fault at *site* (no-op when no plan is armed)."""
        rule = _fault_check(site)
        if rule is None:
            return
        if rule.action == "latency":
            time.sleep(rule.delay_ms / 1000.0)
            return
        if rule.action == "busy":
            raise sqlite3.OperationalError(f"database is locked (injected at {site})")
        raise sqlite3.OperationalError(f"disk I/O error (injected at {site})")

    def _with_retries(self, operation: Callable[[], _T]) -> _T:
        """Run *operation*, retrying transient failures with jittered backoff."""
        attempt = 0
        while True:
            try:
                return operation()
            except sqlite3.OperationalError as error:
                if not _is_transient(error) or attempt >= _RETRY_LIMIT:
                    raise
                self.stats.retries += 1
                delay = _RETRY_BASE_DELAY * (2**attempt) * (0.5 + self._jitter.random())
                time.sleep(delay)
                attempt += 1

    # ------------------------------------------------------------------ #
    # Connection lifecycle
    # ------------------------------------------------------------------ #
    def _open(self) -> None:
        try:
            self._inject("persist.connect")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            connection = sqlite3.connect(
                str(self.path),
                timeout=5.0,
                isolation_level=None,  # autocommit; writes use explicit BEGIN IMMEDIATE
                check_same_thread=False,  # the instance lock serializes access
            )
            # WAL lets readers proceed during a writer's transaction; NORMAL
            # sync is crash-safe for WAL (a torn tail rolls back to the last
            # commit, which the read path tolerates anyway).
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(_CREATE_TABLE)
            connection.execute(_CREATE_TARGET_INDEX)
            try:
                connection.execute(_ADD_ACCESSED)
                connection.execute(_BACKFILL_ACCESSED)
            except sqlite3.OperationalError:
                pass  # column already present (store created at this version)
            self._connection = connection
        except (sqlite3.Error, OSError):
            # A pre-corrupted or unwritable store: degrade to a pure
            # pass-through (every eligible lookup is a counted miss).
            self.stats.errors += 1
            self._connection = None
            self._dead = True

    def close(self) -> None:
        """Close the underlying connection (further ops degrade to misses)."""
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                except sqlite3.Error:  # pragma: no cover - defensive
                    pass
                self._connection = None
            self._dead = True

    def __enter__(self) -> "PersistentCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Eligibility: which in-memory entries may live on disk
    # ------------------------------------------------------------------ #
    @staticmethod
    def _analyze(layer: str, key: Hashable) -> tuple[Hashable | None, Hashable | None]:
        """``(persistable key, target fingerprint component)`` or ``(None, None)``.

        The shapes recognised here are the documented key layouts of
        :class:`~repro.engine.cache.EngineCache`:

        * ``plans``: the classic ``(source_fp, target_fp, fixed_variables)``
          triple of frozensets (a picklable :class:`MatchPlan`).  Interned
          and generated plan entries carry a process-local term-dictionary
          serial and compiled closures — never persisted.
        * ``results``: backend-tagged ``count``/``exists`` scalar memos
          (``key[0] == "count-exists"``, target fingerprint at ``key[1]``)
          and session decision memos (``key[0] == "session"``, no target).
        * ``indexes``: never persisted — target indexes are cheap
          per-process rebuilds keyed partly by process-local serials.
        """
        if layer == "plans":
            if (
                isinstance(key, tuple)
                and len(key) == 3
                and all(isinstance(part, frozenset) for part in key)
            ):
                return key, key[1]
            return None, None
        if layer == "results":
            if isinstance(key, tuple) and len(key) >= 2 and key[0] == "count-exists":
                return key, key[1]
            if isinstance(key, tuple) and len(key) == 2 and key[0] == "session":
                return key, None
            return None, None
        return None, None

    def _digest(self, key: Hashable) -> str | None:
        try:
            return persistent_digest(key)
        except UnpersistableKeyError:
            return None

    # ------------------------------------------------------------------ #
    # The EngineCache adapter protocol: load / store
    # ------------------------------------------------------------------ #
    def load(self, layer: str, key: Hashable) -> Any:
        """The stored value for ``(layer, key)``, or :data:`MISS`.

        Ineligible keys return :data:`MISS` without counting a lookup (the
        hit rate measures eligible traffic only); any storage-level failure
        counts an error and degrades to a miss.
        """
        persistable, _ = self._analyze(layer, key)
        if persistable is None:
            return MISS
        digest = self._digest(persistable)
        if digest is None:
            return MISS
        if self._dead or self._connection is None:
            self.stats.misses += 1
            return MISS
        if not self.breaker.allow():
            self.stats.breaker_skipped += 1
            self.stats.misses += 1
            return MISS
        assert self._connection is not None
        connection: sqlite3.Connection = self._connection

        def _query() -> Any:
            with self._lock:
                self._inject("persist.load")
                return connection.execute(
                    "SELECT value FROM entries "
                    "WHERE layer = ? AND key = ? AND backend = ? AND limits = ? AND schema = ?",
                    (layer, digest, self.backend, self.limits_fingerprint, self.schema_version),
                ).fetchone()

        try:
            row = self._with_retries(_query)
        except sqlite3.Error:
            self.stats.errors += 1
            self.stats.misses += 1
            self.breaker.record_failure()
            return MISS
        self.breaker.record_success()
        if row is None:
            self.stats.misses += 1
            return MISS
        try:
            value = pickle.loads(row[0])
        except Exception:  # noqa: BLE001 - any torn/garbage blob is a miss
            self.stats.errors += 1
            self.stats.misses += 1
            return MISS
        # Best-effort recency stamp for the LRU/age eviction policies; a
        # failed stamp (lock contention) must never cost the hit.
        try:
            with self._lock:
                self._connection.execute(
                    "UPDATE entries SET accessed = ? "
                    "WHERE layer = ? AND key = ? AND backend = ? AND limits = ? AND schema = ?",
                    (
                        time.time(),
                        layer,
                        digest,
                        self.backend,
                        self.limits_fingerprint,
                        self.schema_version,
                    ),
                )
        except sqlite3.Error:
            pass
        self.stats.hits += 1
        return value

    def store(self, layer: str, key: Hashable, value: Any) -> bool:
        """Write one freshly built entry through to disk (best effort).

        Returns ``True`` when a row was written.  Ineligible keys are
        ignored silently; an unpicklable value counts as ``skipped``; any
        storage failure (lock contention, disk trouble) counts an error —
        the in-memory entry stays authoritative either way.
        """
        persistable, target_component = self._analyze(layer, key)
        if persistable is None:
            return False
        digest = self._digest(persistable)
        if digest is None:
            return False
        if self._dead or self._connection is None:
            return False
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - unpicklable values stay in memory
            self.stats.skipped += 1
            return False
        target_digest = ""
        if target_component is not None:
            target = self._digest(target_component)
            if target is None:  # pragma: no cover - key digested, component must too
                return False
            target_digest = target
        if not self.breaker.allow():
            self.stats.breaker_skipped += 1
            return False
        assert self._connection is not None
        connection: sqlite3.Connection = self._connection

        def _write() -> None:
            # Re-checked per attempt, so a count-limited injected "busy"
            # exhausts itself and a retry then succeeds.
            payload = blob
            rule = _fault_check("persist.store")
            if rule is not None:
                if rule.action == "latency":
                    time.sleep(rule.delay_ms / 1000.0)
                elif rule.action == "torn-write":
                    payload = payload[: max(1, len(payload) // 2)]
                elif rule.action == "busy":
                    raise sqlite3.OperationalError(
                        "database is locked (injected at persist.store)"
                    )
                else:
                    raise sqlite3.OperationalError(
                        "disk I/O error (injected at persist.store)"
                    )
            with self._lock:
                connection.execute("BEGIN IMMEDIATE")
                try:
                    connection.execute(
                        "INSERT OR REPLACE INTO entries "
                        "(layer, key, backend, limits, schema, target, value, created) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            layer,
                            digest,
                            self.backend,
                            self.limits_fingerprint,
                            self.schema_version,
                            target_digest,
                            payload,
                            time.time(),
                        ),
                    )
                    connection.execute("COMMIT")
                except BaseException:
                    connection.execute("ROLLBACK")
                    raise

        try:
            self._with_retries(_write)
        except sqlite3.Error:
            self.stats.errors += 1
            self.breaker.record_failure()
            return False
        self.breaker.record_success()
        self.stats.stores += 1
        return True

    # ------------------------------------------------------------------ #
    # Invalidation and maintenance
    # ------------------------------------------------------------------ #
    def invalidate_target(self, target_fingerprint: Hashable) -> int:
        """Drop every row whose target column matches *target_fingerprint*.

        *target_fingerprint* is the in-memory fingerprint component (the
        frozenset of target atoms); it is digested here with the same
        function the store path used, so the two always agree.  This is
        what :meth:`EngineCache.invalidate` calls — an instance mutation
        invalidates the disk rows along with the memory entries.
        """
        digest = self._digest(target_fingerprint)
        if digest is None or self._dead or self._connection is None:
            return 0
        try:
            with self._lock:
                self._connection.execute("BEGIN IMMEDIATE")
                try:
                    cursor = self._connection.execute(
                        "DELETE FROM entries WHERE target = ?", (digest,)
                    )
                    self._connection.execute("COMMIT")
                except BaseException:
                    self._connection.execute("ROLLBACK")
                    raise
        except sqlite3.Error:
            self.stats.errors += 1
            return 0
        dropped = cursor.rowcount if cursor.rowcount is not None and cursor.rowcount > 0 else 0
        self.stats.invalidated += dropped
        return dropped

    def clear(self) -> int:
        """Drop every row in the store; returns the number dropped."""
        if self._dead or self._connection is None:
            return 0
        try:
            with self._lock:
                self._connection.execute("BEGIN IMMEDIATE")
                try:
                    cursor = self._connection.execute("DELETE FROM entries")
                    self._connection.execute("COMMIT")
                except BaseException:
                    self._connection.execute("ROLLBACK")
                    raise
        except sqlite3.Error:
            self.stats.errors += 1
            return 0
        dropped = cursor.rowcount if cursor.rowcount is not None and cursor.rowcount > 0 else 0
        self.stats.invalidated += dropped
        return dropped

    def _prune(self, condition: str, parameters: tuple[Any, ...]) -> int:
        """Delete rows matching *condition*; returns the number dropped.

        Pruning is maintenance, not correctness: a pruned entry simply
        misses on its next lookup and is recomputed, so any failure here
        degrades to dropping nothing.
        """
        if self._dead or self._connection is None:
            return 0
        try:
            with self._lock:
                self._connection.execute("BEGIN IMMEDIATE")
                try:
                    cursor = self._connection.execute(
                        f"DELETE FROM entries WHERE {condition}", parameters
                    )
                    self._connection.execute("COMMIT")
                except BaseException:
                    self._connection.execute("ROLLBACK")
                    raise
        except sqlite3.Error:
            self.stats.errors += 1
            return 0
        dropped = cursor.rowcount if cursor.rowcount is not None and cursor.rowcount > 0 else 0
        self.stats.invalidated += dropped
        return dropped

    def prune_age(self, days: float) -> int:
        """Drop entries not accessed (nor created) within *days* days."""
        cutoff = time.time() - days * 86400.0
        return self._prune("MAX(accessed, created) < ?", (cutoff,))

    def prune_lru(self, keep: int) -> int:
        """Keep only the *keep* most recently accessed entries."""
        if keep < 0:
            keep = 0
        return self._prune(
            "rowid NOT IN (SELECT rowid FROM entries "
            "ORDER BY MAX(accessed, created) DESC, rowid DESC LIMIT ?)",
            (keep,),
        )

    def vacuum(self) -> bool:
        """Checkpoint the WAL and compact the store file."""
        if self._dead or self._connection is None:
            return False
        try:
            with self._lock:
                self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
                self._connection.execute("VACUUM")
        except sqlite3.Error:
            self.stats.errors += 1
            return False
        return True

    def info(self) -> dict[str, Any]:
        """A maintenance snapshot: per-layer row counts, size, versions."""
        info: dict[str, Any] = {
            "path": str(self.path),
            "schema_version": self.schema_version,
            "backend": self.backend,
            "entries": 0,
            "layers": {},
            "schemas": [],
            "backends": [],
            "file_bytes": self.path.stat().st_size if self.path.exists() else 0,
            "stats": self.stats.describe(),
            "breaker": {
                "state": self.breaker.state,
                "opens": self.breaker.opens,
                "half_opens": self.breaker.half_opens,
                "closes": self.breaker.closes,
                "transitions": list(self.breaker.transitions),
            },
        }
        if self._dead or self._connection is None:
            info["status"] = "unavailable"
            return info
        try:
            with self._lock:
                layers = self._connection.execute(
                    "SELECT layer, COUNT(*) FROM entries GROUP BY layer ORDER BY layer"
                ).fetchall()
                schemas = self._connection.execute(
                    "SELECT DISTINCT schema FROM entries ORDER BY schema"
                ).fetchall()
                backends = self._connection.execute(
                    "SELECT DISTINCT backend FROM entries ORDER BY backend"
                ).fetchall()
        except sqlite3.Error:
            self.stats.errors += 1
            info["status"] = "error"
            return info
        info["layers"] = {layer: count for layer, count in layers}
        info["entries"] = sum(count for _, count in layers)
        info["schemas"] = [schema for (schema,) in schemas]
        info["backends"] = [name for (name,) in backends]
        info["status"] = "ok"
        return info

    def describe(self) -> str:
        """One stats line, matching the cache layers' format.

        The breaker summary is appended only once a transition has
        happened, so healthy-path output stays byte-stable.
        """
        line = f"{'persist':<8} {self.stats.describe()}"
        if self.breaker.transitions:
            line += f"; {self.breaker.describe()}"
        return line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PersistentCache({str(self.path)!r}, backend={self.backend!r})"
