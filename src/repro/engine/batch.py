"""Batch entry points: one compiled plan, many probe tuples / bags / targets.

The decision procedures and baselines of this library are embarrassingly
repetitive: the all-probes strategy re-maps the same containing query into a
freshly grounded containee once per probe tuple, and the brute-force
refuters re-evaluate the same grounded containee on thousands of candidate
bags that differ only in fact multiplicities.  The batch APIs amortise the
per-call compilation (and, for bags, the homomorphism enumeration itself)
across the whole workload:

* :func:`count_many` — one plan, one count per fixed-binding assignment;
* :func:`containment_mappings_many` — the containing query's join order is
  compiled once and re-instantiated against each grounded containee;
* :func:`evaluate_bag_many` / :class:`BagBatchEvaluator` — homomorphisms
  only depend on the *support* of a bag, so they are enumerated once over
  the union support and each bag merely re-weights the cached contribution
  skeletons (Equation 2's product is recomputed per bag, the search is not).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.engine.backends import Backend, IndexedBackend, get_default_backend
from repro.engine.executor import execute_count, execute_iterate
from repro.engine.plan import compile_template
from repro.exceptions import ReproError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.substitutions import Substitution
from repro.relational.terms import Term, Variable

__all__ = [
    "count_many",
    "containment_mappings_many",
    "ContainmentMappingBatcher",
    "evaluate_bag_many",
    "BagBatchEvaluator",
    "head_fixing",
]


def _indexed(backend: Backend | None) -> IndexedBackend | None:
    backend = backend if backend is not None else get_default_backend()
    return backend if isinstance(backend, IndexedBackend) else None


def count_many(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed_list: Sequence[Mapping[Variable, Term]],
    backend: Backend | None = None,
) -> tuple[int, ...]:
    """Count homomorphisms for many fixed-binding assignments at once.

    Every mapping in *fixed_list* must bind the same set of variables (the
    plan's signature indexes are keyed on that set); a typical caller fixes
    the head variables of a query and sweeps the answer tuples.
    """
    fixed_list = list(fixed_list)
    if not fixed_list:
        return ()
    key_set = frozenset(fixed_list[0])
    for fixed in fixed_list[1:]:
        if frozenset(fixed) != key_set:
            raise ReproError("count_many requires every fixed mapping to bind the same variables")
    indexed = _indexed(backend)
    if indexed is None:
        naive = backend if backend is not None else get_default_backend()
        source = tuple(source_atoms)
        target = tuple(target_atoms)
        return tuple(naive.count(source, target, fixed) for fixed in fixed_list)
    plan = indexed.plan(source_atoms, target_atoms, key_set)
    return tuple(execute_count(plan, fixed, stats=indexed.stats) for fixed in fixed_list)


def head_fixing(head: Sequence[Term], target: Sequence[Term]) -> dict[Variable, Term] | None:
    """Position-wise head bindings for a containment-style mapping.

    Maps each head term onto the corresponding target term: repeated head
    variables must agree, constant head terms must match exactly.  Returns
    ``None`` when the heads cannot be unified (no mapping exists) — the
    single implementation behind :func:`containment_mappings`,
    ``is_set_contained`` and the batchers here.
    """
    fixed: dict[Variable, Term] = {}
    for source_term, target_term in zip(head, target):
        if isinstance(source_term, Variable):
            bound = fixed.get(source_term)
            if bound is not None and bound != target_term:
                return None
            fixed[source_term] = target_term
        elif source_term != target_term:
            return None
    return fixed


class ContainmentMappingBatcher:
    """Shares the containing query's compiled join order across many targets.

    The fail-first order of a containment-mapping search depends only on the
    source side (the containing query's body) and on the set of pre-bound
    head variables — not on which grounded containee it is aimed at.  The
    batcher compiles that :class:`~repro.engine.plan.JoinTemplate` on first
    use and re-instantiates it per grounded target, so a probe-tuple sweep
    pays compilation once and per-probe cost is index bucketing plus
    execution.  Streaming callers (the all-probes decision strategy stops at
    the first refuting probe) use this class directly;
    :func:`containment_mappings_many` is the eager list-in/list-out wrapper.
    """

    __slots__ = ("containing", "_source", "_fixed_variables", "_backend", "_template")

    def __init__(self, containing: ConjunctiveQuery, backend: Backend | None = None) -> None:
        self.containing = containing
        self._source = containing.body_atoms()
        self._fixed_variables = frozenset(
            term for term in containing.head if isinstance(term, Variable)
        )
        self._backend = backend
        self._template = None

    def mappings(
        self, grounded: ConjunctiveQuery, probe: Sequence[Term]
    ) -> tuple[Substitution, ...]:
        """``CM(containing, grounded@probe)`` through the shared template."""
        probe = tuple(probe)
        if self.containing.arity != len(probe):
            return ()
        fixed = head_fixing(self.containing.head, probe)
        if fixed is None:
            return ()
        target = grounded.body_atoms()
        indexed = _indexed(self._backend)
        if indexed is None:
            naive = self._backend if self._backend is not None else get_default_backend()
            return tuple(naive.iterate(self._source, target, fixed))
        if self._template is None:
            index = indexed.cache.target_index(target)
            self._template = compile_template(
                self._source, self._fixed_variables, index.relation_sizes()
            )
        plan = indexed.cache.plan(
            self._source, target, self._fixed_variables, template=self._template
        )
        return tuple(execute_iterate(plan, fixed, stats=indexed.stats))


def containment_mappings_many(
    containing: ConjunctiveQuery,
    grounded_targets: Sequence[tuple[ConjunctiveQuery, Sequence[Term]]],
    backend: Backend | None = None,
) -> tuple[tuple[Substitution, ...], ...]:
    """``CM(q2(x2), q1(t))`` for a batch of grounded containees.

    *grounded_targets* is a sequence of ``(grounded containee, probe)``
    pairs, typically one per probe tuple of a single containee; the
    containing query is compiled once and re-targeted per pair (see
    :class:`ContainmentMappingBatcher`).
    """
    batcher = ContainmentMappingBatcher(containing, backend=backend)
    return tuple(batcher.mappings(grounded, probe) for grounded, probe in grounded_targets)


class BagBatchEvaluator:
    """Evaluate one query on many bags sharing a support universe.

    Homomorphisms of ``q`` into a bag ``µ`` only depend on ``support(µ)``;
    the contribution of each homomorphism (Equation 2) is a product of fact
    multiplicities raised to body exponents.  The evaluator enumerates the
    homomorphisms into *support_atoms* once, caches the per-homomorphism
    ``(answer, ((fact, exponent), ...))`` skeletons, and then evaluates any
    bag whose support is a subset of the universe in time proportional to
    the number of skeletons — facts absent from a particular bag contribute
    a factor ``0`` exactly as in the reference semantics.
    """

    __slots__ = ("query", "support_atoms", "answer", "_skeletons")

    def __init__(
        self,
        query: ConjunctiveQuery,
        support_atoms: Iterable[Atom],
        answer: Sequence[Term] | None = None,
        backend: Backend | None = None,
    ) -> None:
        self.query = query
        self.support_atoms = tuple(dict.fromkeys(support_atoms))
        self.answer = tuple(answer) if answer is not None else None

        fixed: dict[Variable, Term] | None = {}
        if self.answer is not None:
            if len(self.answer) != query.arity:
                fixed = None  # a wrong-arity tuple is never an answer: multiplicity 0
            else:
                from repro.evaluation.homomorphisms import answer_fixing

                fixed = answer_fixing(query, self.answer)

        skeletons: list[tuple[tuple[Term, ...], tuple[tuple[Atom, int], ...]]] = []
        if fixed is not None:
            resolved = backend if backend is not None else get_default_backend()
            for homomorphism in resolved.iterate(query.body_atoms(), self.support_atoms, fixed):
                answer_tuple = homomorphism.apply_tuple(query.head)
                image = query.apply_substitution(homomorphism)
                skeletons.append((answer_tuple, tuple(image.body.items())))
        self._skeletons = tuple(skeletons)

    @property
    def num_homomorphisms(self) -> int:
        """Number of cached homomorphism skeletons."""
        return len(self._skeletons)

    @staticmethod
    def _contribution(items: tuple[tuple[Atom, int], ...], bag: BagInstance) -> int:
        """One homomorphism's Equation 2 product ``Π µ(α)^exponent`` on *bag*."""
        contribution = 1
        for fact, exponent in items:
            multiplicity = bag[fact]
            if multiplicity == 0:
                return 0
            contribution *= multiplicity**exponent
        return contribution

    def multiplicity(self, bag: BagInstance) -> int:
        """``q^µ(answer)`` for the pinned answer tuple (or the total over all)."""
        return sum(self._contribution(items, bag) for _, items in self._skeletons)

    def evaluate(self, bag: BagInstance):
        """The full answer bag ``q^µ`` (an :class:`AnswerBag`)."""
        from repro.evaluation.bag_evaluation import AnswerBag

        counts: dict[tuple[Term, ...], int] = {}
        for answer_tuple, items in self._skeletons:
            contribution = self._contribution(items, bag)
            if contribution:
                counts[answer_tuple] = counts.get(answer_tuple, 0) + contribution
        return AnswerBag(counts)


def evaluate_bag_many(
    query: ConjunctiveQuery,
    bags: Sequence[BagInstance],
    backend: Backend | None = None,
):
    """``q^µ`` for every bag in *bags*, sharing one homomorphism enumeration.

    The homomorphisms are enumerated once over the union of the bags'
    supports; each bag then only re-weights the cached contribution
    skeletons.  Returns one :class:`AnswerBag` per input bag, equal to
    ``evaluate_bag(query, bag)``.
    """
    bags = list(bags)
    universe: dict[Atom, None] = {}
    for bag in bags:
        for fact, _ in bag.items():
            universe.setdefault(fact, None)
    evaluator = BagBatchEvaluator(query, universe, backend=backend)
    return tuple(evaluator.evaluate(bag) for bag in bags)
