"""The compiled homomorphism engine: plan / execute with caching and batching.

Every decision path of this reproduction — bag evaluation (Equation 2),
Chandra–Merlin set containment, the MPI encoding of Definition 3.3, and the
three bag-containment strategies — bottoms out in the same combinatorial
question: enumerate (or count, or merely detect) the homomorphisms of a set
of source atoms into a set of target atoms under pre-fixed bindings.  This
package turns that question into a compiled subsystem:

1. **Plan** (:mod:`repro.engine.plan`): a ``(source, target, fixed)`` triple
   is compiled once into a :class:`MatchPlan` — a statically ordered join
   sequence chosen by a fail-first cost estimate, plus lazily built
   per-relation candidate indexes keyed by bound-position signatures.
2. **Execute** (:mod:`repro.engine.executor`): an iterative, trail-based
   executor runs the plan in one of three modes — ``iterate``, ``count`` or
   ``exists`` — so decision callers never pay for enumeration.
3. **Cache** (:mod:`repro.engine.cache`): plans, target indexes and scalar
   results are memoised in an :class:`EngineCache` with LRU bounds, hit/miss
   statistics and explicit invalidation.
4. **Batch** (:mod:`repro.engine.batch`): :func:`count_many`,
   :func:`containment_mappings_many` and :func:`evaluate_bag_many` share one
   compiled plan (and, for bags, one homomorphism enumeration) across whole
   probe-tuple or candidate-bag sweeps.

Four backends implement the common interface: ``naive`` (the original
recursive backtracker, kept as the executable specification), ``indexed``
(the compiled engine, the default), ``interned`` (the integer data plane
of :mod:`repro.engine.interned`: terms interned to dense ids, columnar
target storage, packed-key signature indexes, and join orders picked by
observed per-signature selectivity) and ``generated`` (the interned data
plane executed by generated code — :mod:`repro.engine.codegen` compiles
each plan suffix into one nested-loop function — with lazy substitution
materialisation and the adaptive mid-execution replanner of
:mod:`repro.engine.generated`).  Select globally with
:func:`set_default_backend` / :func:`use_backend`, or per call via the
``backend=`` keyword; the CLI exposes the same choice as
``--engine-backend`` and prints :func:`default_cache` statistics under
``--engine-stats``.
"""

from repro.engine.api import count_homomorphisms, has_homomorphism, iterate_homomorphisms
from repro.engine.backends import (
    BACKEND_NAMES,
    Backend,
    BackendFactory,
    GeneratedBackend,
    IndexedBackend,
    InternedBackend,
    NaiveBackend,
    backend_names,
    create_backend,
    default_cache,
    get_backend,
    get_default_backend,
    register_backend,
    set_default_backend,
    use_backend,
)
from repro.engine.batch import (
    BagBatchEvaluator,
    ContainmentMappingBatcher,
    containment_mappings_many,
    count_many,
    evaluate_bag_many,
)
from repro.engine.cache import (
    CacheStats,
    EngineCache,
    describe_snapshot,
    merge_snapshots,
    snapshot_delta,
)
from repro.engine.executor import (
    ExecutionStats,
    execute_count,
    execute_exists,
    execute_iterate,
)
from repro.engine.fingerprints import (
    UnpersistableKeyError,
    atoms_fingerprint,
    instance_fingerprint,
    persistent_digest,
    query_fingerprint,
)
from repro.engine.generated import (
    GeneratedPlan,
    generated_count,
    generated_exists,
    generated_iterate,
)
from repro.engine.interned import (
    InternedPlan,
    compile_interned_plan,
    interned_count,
    interned_exists,
    interned_iterate,
)
from repro.engine.interning import InternedTarget, TermDictionary
from repro.engine.persist import MISS, PersistentCache, PersistStats, SCHEMA_VERSION
from repro.engine.plan import (
    JoinTemplate,
    MatchPlan,
    PlanStep,
    TargetIndex,
    compile_plan,
    compile_template,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "BackendFactory",
    "BagBatchEvaluator",
    "CacheStats",
    "ContainmentMappingBatcher",
    "EngineCache",
    "ExecutionStats",
    "GeneratedBackend",
    "GeneratedPlan",
    "IndexedBackend",
    "InternedBackend",
    "InternedPlan",
    "InternedTarget",
    "JoinTemplate",
    "MISS",
    "MatchPlan",
    "NaiveBackend",
    "PersistStats",
    "PersistentCache",
    "PlanStep",
    "SCHEMA_VERSION",
    "TargetIndex",
    "TermDictionary",
    "UnpersistableKeyError",
    "atoms_fingerprint",
    "backend_names",
    "compile_interned_plan",
    "compile_plan",
    "compile_template",
    "containment_mappings_many",
    "count_homomorphisms",
    "count_many",
    "create_backend",
    "default_cache",
    "describe_snapshot",
    "evaluate_bag_many",
    "execute_count",
    "execute_exists",
    "execute_iterate",
    "generated_count",
    "generated_exists",
    "generated_iterate",
    "get_backend",
    "get_default_backend",
    "has_homomorphism",
    "instance_fingerprint",
    "interned_count",
    "interned_exists",
    "interned_iterate",
    "iterate_homomorphisms",
    "merge_snapshots",
    "query_fingerprint",
    "register_backend",
    "set_default_backend",
    "snapshot_delta",
    "use_backend",
]
