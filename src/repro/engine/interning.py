"""Term interning and columnar target storage for the interned backend.

The compiled engine of :mod:`repro.engine.plan` still manipulates the
library's value objects directly: every candidate probe hashes tuples of
:class:`~repro.relational.terms.Term` dataclasses, every binding check runs
a dataclass ``__eq__``, and every signature-index lookup rebuilds a term
tuple.  For the hot loops — homomorphism enumeration, counting and existence
— those object-protocol costs dominate once plans are cached.  This module
replaces the representation underneath:

:class:`TermDictionary`
    A per-backend bijection between terms and dense integer ids.  Interning
    is append-only (ids are never recycled), so an id remains valid for the
    dictionary's whole lifetime and integer equality is term equality.

:class:`InternedRelation`
    The columnar image of one ``(relation, arity)`` bucket: one
    :class:`array.array` per argument position (the column layout signature
    indexes are built from — building an index touches only the signature's
    columns) plus the materialised tuple-of-int rows the executor iterates.

:class:`InternedTarget`
    The interned image of one deduplicated target atom set, with lazily
    built signature group indexes keyed on *packed* integer keys (the ids at
    the signature positions packed into one machine integer, see
    :func:`pack_ids`) and per-signature statistics — bucket size over group
    count is the observed selectivity estimate that the interned planner's
    cost ordering consumes in place of the static fail-first guess.
"""

from __future__ import annotations

import itertools
from array import array
from typing import Iterable, Iterator, Sequence

from repro.relational.atoms import Atom
from repro.relational.terms import Term

__all__ = [
    "ID_BITS",
    "InternedRelation",
    "InternedTarget",
    "TermDictionary",
    "observed_average",
    "pack_ids",
]

#: Bits reserved per id when packing a multi-position signature key.  Ids are
#: dense (one per distinct term seen by a backend), so 32 bits of headroom
#: keeps single- and double-position keys inside CPython's fast small-int
#: range while remaining collision-free for any realistic dictionary.
ID_BITS = 32

_SERIALS = itertools.count(1)


class TermDictionary:
    """An append-only bijection between terms and dense integer ids.

    One dictionary per backend instance: every id used by that backend's
    compiled artefacts (columns, group indexes, plan constants) refers to
    this dictionary, and ``serial`` — unique for the process lifetime —
    tags shared-cache entries so artefacts can never be rehydrated against
    a different dictionary's id space.

    Ids are bounded by ``id_bits`` (:data:`ID_BITS` unless overridden): the
    packed-key arithmetic of :meth:`InternedTarget.group_index` and the
    plan executors shifts each id into its own :data:`ID_BITS` window, so
    an id at or beyond ``2**id_bits`` would make packed keys non-injective
    and silently conflate distinct candidate groups.  Rather than collide,
    :meth:`intern` raises :class:`~repro.exceptions.TermIdOverflowError`
    at the computed bound.
    """

    __slots__ = ("_ids", "_terms", "serial", "id_bits", "capacity")

    def __init__(self, id_bits: int = ID_BITS) -> None:
        if id_bits < 1:
            raise ValueError("a term dictionary needs at least one id bit")
        self._ids: dict[Term, int] = {}
        self._terms: list[Term] = []
        self.serial = next(_SERIALS)
        self.id_bits = id_bits
        self.capacity = 1 << id_bits

    def intern(self, term: Term) -> int:
        """The id of *term*, assigning the next dense id on first sight."""
        ids = self._ids
        interned = ids.get(term)
        if interned is None:
            interned = len(self._terms)
            if interned >= self.capacity:
                from repro.exceptions import TermIdOverflowError

                raise TermIdOverflowError(term, self.id_bits, self.capacity)
            ids[term] = interned
            self._terms.append(term)
        return interned

    def lookup(self, term: Term) -> int | None:
        """The id of *term* if already interned, else ``None`` (no mutation)."""
        return self._ids.get(term)

    def intern_many(self, terms: Iterable[Term]) -> tuple[int, ...]:
        """Intern a tuple of terms (one atom's argument list, typically)."""
        return tuple(self.intern(term) for term in terms)

    def term(self, index: int) -> Term:
        """Invert :meth:`intern` (ids are never recycled, so this is total)."""
        return self._terms[index]

    @property
    def terms(self) -> list[Term]:
        """The interned terms, indexable by id (shared, do not mutate)."""
        return self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TermDictionary({len(self._terms)} terms, serial {self.serial})"


def pack_ids(ids: Iterable[int]) -> int:
    """Pack a sequence of term ids into one integer key.

    Single-position signatures key by the bare id; longer signatures shift
    each id into its own :data:`ID_BITS` window.  Packed keys hash and
    compare as machine integers, which is what makes the interned signature
    index probe cheap.
    """
    packed = 0
    for value in ids:
        packed = (packed << ID_BITS) | value
    return packed


def observed_average(counter: Sequence[int] | None) -> float | None:
    """Candidates-per-probe of a live ``[probes, candidates]`` counter stream.

    ``None`` before the first probe — callers then fall back to the static
    index statistics.  This is the *measured* selectivity the adaptive
    replanner compares against a plan's compile-time estimates.
    """
    if not counter or not counter[0]:
        return None
    return counter[1] / counter[0]


class InternedRelation:
    """Columnar storage of one ``(relation, arity)`` target bucket."""

    __slots__ = ("arity", "columns", "rows")

    def __init__(self, arity: int, rows: list[tuple[int, ...]]) -> None:
        self.arity = arity
        self.rows: tuple[tuple[int, ...], ...] = tuple(rows)
        # One array per argument position: signature indexes are built by
        # scanning only the columns the signature names.
        self.columns: tuple[array, ...] = tuple(
            array("q", (row[position] for row in self.rows)) for position in range(arity)
        )

    def __len__(self) -> int:
        return len(self.rows)


class InternedTarget:
    """The interned, columnar image of one deduplicated target atom set.

    Signature group indexes map a packed key to the tuple of matching rows
    and are built lazily from the columns, once per ``(relation, arity,
    signature)``.  Building one records the group count, which yields the
    *observed selectivity* ``len(bucket) / groups`` — the average candidate
    count a probe of that signature returns — that
    :func:`repro.engine.interned.compile_interned_plan` orders join steps
    by.
    """

    __slots__ = ("_dictionary", "_relations", "_groups", "_atoms", "term_ids")

    def __init__(self, dictionary: TermDictionary, target_atoms: Iterable[Atom]) -> None:
        self._dictionary = dictionary
        self._atoms: tuple[Atom, ...] = tuple(dict.fromkeys(target_atoms))
        buckets: dict[tuple[str, int], list[tuple[int, ...]]] = {}
        ids: set[int] = set()
        for atom in self._atoms:
            row = dictionary.intern_many(atom.terms)
            ids.update(row)
            buckets.setdefault((atom.relation, atom.arity), []).append(row)
        #: Every term id appearing in the target's rows.  A plan whose slot
        #: self-ids are disjoint from this set can never produce an identity
        #: binding (``x -> x``), which unlocks the generated backend's
        #: C-level substitution materialisation.
        self.term_ids: frozenset[int] = frozenset(ids)
        self._relations: dict[tuple[str, int], InternedRelation] = {
            (relation, arity): InternedRelation(arity, rows)
            for (relation, arity), rows in buckets.items()
        }
        self._groups: dict[
            tuple[str, int, tuple[int, ...]], dict[int, tuple[tuple[int, ...], ...]]
        ] = {}

    @property
    def atoms(self) -> tuple[Atom, ...]:
        """The deduplicated target atoms, in first-seen order."""
        return self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def relation_sizes(self) -> dict[tuple[str, int], int]:
        """Bucket sizes, the static half of the planner's cost estimate."""
        return {key: len(relation) for key, relation in self._relations.items()}

    def rows(self, relation: str, arity: int) -> tuple[tuple[int, ...], ...]:
        """Every interned row of the bucket (the empty-signature candidates)."""
        bucket = self._relations.get((relation, arity))
        return bucket.rows if bucket is not None else ()

    def group_index(
        self, relation: str, arity: int, signature: tuple[int, ...]
    ) -> dict[int, tuple[tuple[int, ...], ...]]:
        """The packed-key group index for *signature*, built on first use."""
        key = (relation, arity, signature)
        index = self._groups.get(key)
        if index is None:
            grouped: dict[int, list[tuple[int, ...]]] = {}
            bucket = self._relations.get((relation, arity))
            if bucket is not None:
                columns = [bucket.columns[position] for position in signature]
                for row_number, row in enumerate(bucket.rows):
                    packed = 0
                    for column in columns:
                        packed = (packed << ID_BITS) | column[row_number]
                    grouped.setdefault(packed, []).append(row)
            index = {packed: tuple(rows) for packed, rows in grouped.items()}
            self._groups[key] = index
        return index

    def selectivity(
        self, relation: str, arity: int, signature: tuple[int, ...]
    ) -> float | None:
        """Observed average candidates per probe for a *built* signature index.

        ``None`` when the signature index has not been built yet — the
        planner then falls back to its static estimate.  An empty bucket
        observes selectivity 0 (every probe of it returns nothing).
        """
        index = self._groups.get((relation, arity, signature))
        if index is None:
            return None
        bucket = self._relations.get((relation, arity))
        if bucket is None or not index:
            return 0.0
        return len(bucket) / len(index)

    def cost_estimate(
        self,
        relation: str,
        arity: int,
        signature: tuple[int, ...],
        counter: Sequence[int] | None = None,
    ) -> float:
        """The best available candidates-per-probe estimate for one signature.

        Three tiers, most-informed first: the *live* probe counters (what
        executions actually observed, including key skew), then the built
        signature index's structural average (``bucket / groups``), then the
        static fail-first guess (``bucket / 4^determined``).  Every planner
        in the integer data plane — the interned compiler and the generated
        backend's mid-execution replanner — prices join steps through this
        one method, so compile-time and replan-time decisions are always
        comparable.
        """
        live = observed_average(counter)
        if live is not None:
            return live
        structural = self.selectivity(relation, arity, signature)
        if structural is not None:
            return structural
        bucket = self._relations.get((relation, arity))
        size = len(bucket) if bucket is not None else 0
        return size / (4.0 ** len(signature))

    def built_signatures(self) -> Iterator[tuple[str, int, tuple[int, ...]]]:
        """The ``(relation, arity, signature)`` triples with built indexes."""
        return iter(self._groups)
