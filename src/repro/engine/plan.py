"""Match-plan compilation: static join orders and signature-keyed indexes.

The engine separates the *what* of homomorphism search (which source atoms
must be mapped into which target atoms, under which pre-fixed bindings) from
the *how* (in which order the atoms are matched and how candidate facts are
looked up).  Compilation happens once per ``(source, target, fixed-keys)``
triple and produces two reusable artefacts:

:class:`JoinTemplate`
    The target-independent half of a plan.  Given the deduplicated source
    atoms and the *set* of variables that will be pre-bound at execution time
    (their values are only known later — e.g. the head variables of a query
    being probed at many answer tuples), the compiler chooses a static atom
    order by a greedy fail-first cost estimate and precomputes, for every
    step, the *bound-position signature*: the argument positions whose value
    is already determined when the step runs (constants, pre-fixed variables,
    and variables bound by earlier steps).  Each step also records which
    positions bind new variables, so the executor never re-derives anything.

:class:`TargetIndex`
    The source-independent half.  Target atoms are bucketed by
    ``(relation, arity)`` and, lazily, by bound-position signature: the first
    time a step asks for candidates matching a signature, a hash index from
    the tuple of terms at the signature positions to the candidate atoms is
    built and memoised.  Subsequent executions of the same plan (or of any
    plan sharing the index) look candidates up in O(1) instead of scanning
    the relation bucket with a per-candidate match test.

A :class:`MatchPlan` pairs one template with one index; execution lives in
:mod:`repro.engine.executor`.  Because a template only depends on the source
side, it can be shared across many targets (the batch containment-mapping
entry point compiles the containing query once and re-instantiates the plan
per grounded containee), and because an index only depends on the target, it
is shared across all queries probing the same instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ReproError
from repro.relational.atoms import Atom
from repro.relational.terms import Term, Variable

__all__ = [
    "PlanStep",
    "JoinTemplate",
    "TargetIndex",
    "MatchPlan",
    "compile_template",
    "compile_plan",
    "greedy_order",
]


#: Sentinel kinds for the per-position key sources of a step.
_CONST = 0
_VAR = 1


@dataclass(frozen=True)
class PlanStep:
    """One statically scheduled join step.

    ``signature`` lists the argument positions whose value is determined
    before the step runs; ``key_sources`` says, position by position, where
    that value comes from (a literal constant, or a variable guaranteed to be
    bound — pre-fixed or bound by an earlier step).  ``new_var_positions``
    lists the positions that bind fresh variables; a variable repeated inside
    the atom appears once per occurrence and the executor enforces
    consistency between the occurrences.
    """

    atom: Atom
    relation: str
    arity: int
    signature: tuple[int, ...]
    key_sources: tuple[tuple[int, object], ...]  # (kind, term-or-variable), aligned with signature
    new_var_positions: tuple[tuple[int, Variable], ...]


def _make_step(atom: Atom, bound: set[Variable]) -> PlanStep:
    signature: list[int] = []
    key_sources: list[tuple[int, object]] = []
    new_vars: list[tuple[int, Variable]] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term in bound:
                signature.append(position)
                key_sources.append((_VAR, term))
            else:
                new_vars.append((position, term))
        else:
            signature.append(position)
            key_sources.append((_CONST, term))
    return PlanStep(
        atom=atom,
        relation=atom.relation,
        arity=atom.arity,
        signature=tuple(signature),
        key_sources=tuple(key_sources),
        new_var_positions=tuple(new_vars),
    )


@dataclass(frozen=True)
class JoinTemplate:
    """A compiled, target-independent join order over the source atoms."""

    source_atoms: tuple[Atom, ...]
    fixed_variables: frozenset[Variable]
    steps: tuple[PlanStep, ...]
    source_variables: frozenset[Variable]

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        """A human-readable rendering of the join order and signatures."""
        lines = [f"join template over {len(self.source_atoms)} atoms"]
        for index, step in enumerate(self.steps):
            bound = ", ".join(str(p) for p in step.signature) or "none"
            fresh = ", ".join(str(v) for _, v in step.new_var_positions) or "none"
            lines.append(f"  step {index}: {step.atom}  [bound positions: {bound}; binds: {fresh}]")
        return "\n".join(lines)


def greedy_order(
    atoms: Sequence[Atom],
    bound: set[Variable],
    estimate: Callable[[Atom, set[Variable]], tuple[float, int]],
) -> Iterator[tuple[Atom, tuple[float, int]]]:
    """Yield *atoms* in greedy fail-first order under a pluggable cost model.

    At each step the atom minimising ``estimate(atom, bound)`` is scheduled
    (ties keep the original atom order, so scheduling is deterministic for a
    fixed cost model) and yielded together with the winning cost, and
    *bound* — mutated in place — absorbs the atom's variables before the
    next pick.  The mutation happens on generator resume, so a consumer
    that builds one step per yielded atom always observes the bound set as
    of *before* that atom.  Every join compiler in the engine (the indexed
    template compiler, the interned planner, and the generated backend's
    mid-execution replanner) runs its ordering through this one loop.
    """
    remaining = list(atoms)
    while remaining:
        best_index = 0
        best_cost = estimate(remaining[0], bound)
        for index in range(1, len(remaining)):
            cost = estimate(remaining[index], bound)
            if cost < best_cost:
                best_cost, best_index = cost, index
        atom = remaining.pop(best_index)
        yield atom, best_cost
        bound.update(atom.variables())


def compile_template(
    source_atoms: Iterable[Atom],
    fixed_variables: Iterable[Variable] = (),
    relation_sizes: Mapping[tuple[str, int], int] | None = None,
) -> JoinTemplate:
    """Choose a static join order with a greedy fail-first cost estimate.

    At each step the atom with the smallest estimated candidate count is
    scheduled next.  The estimate is ``bucket_size``, discounted once per
    determined position — determined positions shrink the candidate set via
    the signature index, so atoms that are more constrained (and relations
    that are smaller) are matched first, failing as early as possible.  Ties
    prefer more determined positions, then the original atom order, keeping
    compilation deterministic.
    """
    source = tuple(dict.fromkeys(source_atoms))
    fixed = frozenset(fixed_variables)

    source_variables: set[Variable] = set()
    for atom in source:
        source_variables.update(atom.variables())

    sizes = relation_sizes or {}

    def estimate(atom: Atom, bound: set[Variable]) -> tuple[float, int]:
        determined = 0
        for term in atom.terms:
            if not isinstance(term, Variable) or term in bound:
                determined += 1
        bucket = sizes.get((atom.relation, atom.arity), 8)
        # Each determined position is assumed to cut the bucket by ~4x; the
        # exact constant only shapes tie-breaking between relations of very
        # different sizes, never correctness.
        return (bucket / (4.0 ** determined), -determined)

    bound: set[Variable] = set(fixed)
    steps: list[PlanStep] = []
    for atom, _ in greedy_order(source, bound, estimate):
        steps.append(_make_step(atom, bound))

    return JoinTemplate(
        source_atoms=source,
        fixed_variables=fixed,
        steps=tuple(steps),
        source_variables=frozenset(source_variables),
    )


class TargetIndex:
    """Per-relation candidate indexes over a fixed set of target atoms.

    Signature indexes are built lazily: the first request for candidates of
    ``(relation, arity)`` under a signature scans the relation bucket once
    and groups the atoms by the tuple of terms at the signature positions;
    every later request is a dictionary lookup.
    """

    __slots__ = ("_atoms", "_buckets", "_signature_indexes")

    def __init__(self, target_atoms: Iterable[Atom]) -> None:
        self._atoms: tuple[Atom, ...] = tuple(dict.fromkeys(target_atoms))
        buckets: dict[tuple[str, int], list[Atom]] = {}
        for atom in self._atoms:
            buckets.setdefault((atom.relation, atom.arity), []).append(atom)
        self._buckets = buckets
        self._signature_indexes: dict[
            tuple[str, int, tuple[int, ...]], dict[tuple[Term, ...], list[Atom]]
        ] = {}

    @property
    def atoms(self) -> tuple[Atom, ...]:
        """The deduplicated target atoms, in first-seen order."""
        return self._atoms

    def relation_sizes(self) -> dict[tuple[str, int], int]:
        """Bucket sizes, used by the template compiler's cost estimate."""
        return {key: len(bucket) for key, bucket in self._buckets.items()}

    def bucket(self, relation: str, arity: int) -> Sequence[Atom]:
        """All target atoms of the given relation and arity."""
        return self._buckets.get((relation, arity), ())

    def candidates(
        self, relation: str, arity: int, signature: tuple[int, ...], key: tuple[Term, ...]
    ) -> Sequence[Atom]:
        """Target atoms matching *key* at the *signature* positions."""
        if not signature:
            return self._buckets.get((relation, arity), ())
        index_key = (relation, arity, signature)
        index = self._signature_indexes.get(index_key)
        if index is None:
            index = {}
            for atom in self._buckets.get((relation, arity), ()):
                terms = atom.terms
                index.setdefault(tuple(terms[p] for p in signature), []).append(atom)
            self._signature_indexes[index_key] = index
        return index.get(key, ())

    def __len__(self) -> int:
        return len(self._atoms)


@dataclass(frozen=True)
class MatchPlan:
    """A compiled plan: one join template instantiated against one index."""

    template: JoinTemplate
    index: TargetIndex

    @property
    def source_atoms(self) -> tuple[Atom, ...]:
        return self.template.source_atoms

    @property
    def target_atoms(self) -> tuple[Atom, ...]:
        return self.index.atoms

    def describe(self) -> str:
        """Join order plus target statistics, for debugging and the CLI."""
        sizes = ", ".join(
            f"{relation}/{arity}:{size}"
            for (relation, arity), size in sorted(self.index.relation_sizes().items())
        )
        return self.template.describe() + f"\n  target: {len(self.index)} atoms ({sizes or 'empty'})"

    def check_fixed(self, fixed: Mapping[Variable, Term]) -> None:
        """Reject execution-time bindings the plan was not compiled for.

        Bindings for source variables outside the compiled fixed set would
        silently bypass the signature indexes (the plan would treat them as
        free), and compiled fixed variables left unbound would fault inside
        the executor's key construction — both are errors rather than slow
        or broken paths.
        """
        unplanned = [
            variable
            for variable in fixed
            if variable not in self.template.fixed_variables
            and variable in self.template.source_variables
        ]
        if unplanned:
            raise ReproError(
                "plan was compiled without fixed bindings for "
                f"{sorted(str(v) for v in unplanned)}; recompile with the full fixed-variable set"
            )
        missing = [
            variable
            for variable in self.template.fixed_variables
            if variable in self.template.source_variables and variable not in fixed
        ]
        if missing:
            raise ReproError(
                "plan was compiled expecting fixed bindings for "
                f"{sorted(str(v) for v in missing)}; pass values for them at execution time"
            )


def compile_plan(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed_variables: Iterable[Variable] = (),
    template: JoinTemplate | None = None,
    index: TargetIndex | None = None,
) -> MatchPlan:
    """Compile a reusable match plan for a ``(source, target, fixed)`` triple.

    Either half may be supplied pre-compiled: a *template* to share a join
    order across targets (its source atoms and fixed variables must match),
    or an *index* to share target bucketing across sources.
    """
    if index is None:
        index = TargetIndex(target_atoms)
    if template is None:
        template = compile_template(source_atoms, fixed_variables, index.relation_sizes())
    return MatchPlan(template=template, index=index)
