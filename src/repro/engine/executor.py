"""Iterative execution of compiled match plans.

The executor walks the statically ordered steps of a
:class:`~repro.engine.plan.JoinTemplate` with an explicit depth counter, one
candidate iterator per step, and a binding *trail* for O(1) backtracking — no
recursion, no per-node dictionary copies, no re-derivation of candidate sets.
At depth ``d`` the candidates are obtained from the target's signature index
using the key assembled from the current bindings; descending binds the
step's fresh variables in place and records them on the trail, backtracking
pops the trail.

Three execution modes share the same core loop:

``iterate``
    Yield one :class:`~repro.relational.substitutions.Substitution` per
    solution (the classic enumeration API).

``count``
    Return the number of solutions without materialising any substitution —
    the bag-set multiplicity of an answer tuple is exactly this number.

``exists``
    Return as soon as the first solution is found; the decision entry points
    (`has_homomorphism`, set containment, minimisation folds) never need the
    witness enumeration cost.

:class:`ExecutionStats` counts candidates tried and solutions found, which
the test-suite uses to prove that ``exists`` genuinely early-exits instead
of enumerating everything and taking the first element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.engine.plan import _CONST, MatchPlan
from repro.faults.runtime import TICK_INTERVAL, tick_handle
from repro.relational.substitutions import Substitution
from repro.relational.terms import Term, Variable

__all__ = ["ExecutionStats", "execute_iterate", "execute_count", "execute_exists"]


@dataclass
class ExecutionStats:
    """Counters accumulated by plan executions that opt into stats."""

    candidates_tried: int = 0
    solutions_found: int = 0
    executions: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        self.candidates_tried += other.candidates_tried
        self.solutions_found += other.solutions_found
        self.executions += other.executions


@dataclass
class _Run:
    """Mutable per-execution state shared by the mode wrappers."""

    candidates: int = 0
    solutions: int = 0


def _solutions(
    plan: MatchPlan, bindings: dict[Variable, Term], run: _Run
) -> Iterator[dict[Variable, Term]]:
    """Core loop: yields the *live* bindings dict once per solution.

    Callers must not retain the yielded dict across iterations — snapshot it
    (the ``iterate`` wrapper does) or consume it immediately (``count`` and
    ``exists`` do).
    """
    steps = plan.template.steps
    index = plan.index
    n = len(steps)
    if n == 0:
        run.solutions += 1
        yield bindings
        return

    iterators: list[Iterator] = [iter(())] * n
    trail: list[tuple[Variable, ...]] = [()] * n

    def start(depth: int) -> None:
        step = steps[depth]
        key = tuple(
            source if kind == _CONST else bindings[source]  # type: ignore[index]
            for kind, source in step.key_sources
        )
        iterators[depth] = iter(index.candidates(step.relation, step.arity, step.signature, key))

    start(0)
    depth = 0
    # Deadline/fault tick: one falsy integer test per iteration when no
    # deadline and no fault plan are armed (tick is then None, countdown 0).
    tick = tick_handle()
    countdown = TICK_INTERVAL if tick is not None else 0
    while depth >= 0:
        if countdown:
            countdown -= 1
            if not countdown:
                assert tick is not None
                tick()
                countdown = TICK_INTERVAL
        step = steps[depth]
        new_var_positions = step.new_var_positions
        descended = False
        for candidate in iterators[depth]:
            run.candidates += 1
            terms = candidate.terms
            newly: list[Variable] = []
            ok = True
            for position, variable in new_var_positions:
                term = terms[position]
                bound = bindings.get(variable)
                if bound is None:
                    bindings[variable] = term
                    newly.append(variable)
                elif bound != term:
                    ok = False
                    break
            if not ok:
                for variable in newly:
                    del bindings[variable]
                continue
            if depth == n - 1:
                run.solutions += 1
                yield bindings
                for variable in newly:
                    del bindings[variable]
                continue
            trail[depth] = tuple(newly)
            depth += 1
            start(depth)
            descended = True
            break
        if not descended:
            depth -= 1
            if depth >= 0:
                for variable in trail[depth]:
                    del bindings[variable]


def _initial_bindings(fixed: Mapping[Variable, Term] | None) -> dict[Variable, Term]:
    return dict(fixed or {})


def execute_iterate(
    plan: MatchPlan,
    fixed: Mapping[Variable, Term] | None = None,
    stats: ExecutionStats | None = None,
) -> Iterator[Substitution]:
    """Enumerate every homomorphism as a :class:`Substitution`.

    Matches the reference semantics of
    :func:`repro.evaluation.homomorphisms.homomorphisms`: fixed bindings are
    included in the yielded substitutions, and source variables left unbound
    (none, once all steps ran) default to themselves.
    """
    bindings = _initial_bindings(fixed)
    plan.check_fixed(bindings)
    run = _Run()
    try:
        for solution in _solutions(plan, bindings, run):
            yield Substitution(solution)
    finally:
        if stats is not None:
            stats.candidates_tried += run.candidates
            stats.solutions_found += run.solutions
            stats.executions += 1


def execute_count(
    plan: MatchPlan,
    fixed: Mapping[Variable, Term] | None = None,
    stats: ExecutionStats | None = None,
) -> int:
    """Count homomorphisms without materialising substitutions."""
    bindings = _initial_bindings(fixed)
    plan.check_fixed(bindings)
    run = _Run()
    for _ in _solutions(plan, bindings, run):
        pass
    if stats is not None:
        stats.candidates_tried += run.candidates
        stats.solutions_found += run.solutions
        stats.executions += 1
    return run.solutions


def execute_exists(
    plan: MatchPlan,
    fixed: Mapping[Variable, Term] | None = None,
    stats: ExecutionStats | None = None,
) -> bool:
    """``True`` as soon as one homomorphism is found; never enumerates more."""
    bindings = _initial_bindings(fixed)
    plan.check_fixed(bindings)
    run = _Run()
    found = next(_solutions(plan, bindings, run), None) is not None
    if stats is not None:
        stats.candidates_tried += run.candidates
        stats.solutions_found += run.solutions
        stats.executions += 1
    return found
