"""The memoising engine cache: compiled plans, shared indexes, result memos.

Compilation is cheap but not free (join ordering plus index bucketing is
linear in the source and target sizes), and the library's hot paths compile
the *same* triples over and over: every probe tuple of a containment check
re-targets the same containing query, every candidate bag of a refuter
re-evaluates the same grounded containee, every minimisation round re-folds
the same body.  :class:`EngineCache` memoises three layers:

* **target indexes**, keyed by the instance fingerprint — shared by every
  query probing the same instance;
* **match plans**, keyed by ``(source, target, fixed-variable-set)``
  fingerprints — shared by every execution of the same logical search, no
  matter which values the fixed variables take;
* **scalar results** (``count`` / ``exists``), keyed by the full execution
  key including the fixed values — these are pure functions of immutable
  value objects, so memoising them is always sound.

All three layers keep LRU order and expose hit/miss/eviction statistics;
:meth:`EngineCache.invalidate` drops entries touching a given target (or
everything), which is the hook instance-mutating callers use.

A cache can additionally be backed by a persistent tier
(:meth:`EngineCache.attach_persistent`): an in-memory miss then falls
through to the disk store before building, and freshly built eligible
entries are written back — see :mod:`repro.engine.persist` for the key
discipline and the corruption-tolerance guarantees.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping

from repro.engine.fingerprints import atoms_fingerprint
from repro.engine.persist import MISS, PersistentCache
from repro.engine.plan import JoinTemplate, MatchPlan, TargetIndex, compile_plan
from repro.relational.atoms import Atom
from repro.relational.terms import Variable

__all__ = ["CacheStats", "EngineCache", "describe_snapshot", "merge_snapshots", "snapshot_delta"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache layer."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> str:
        return f"{self.hits} hits / {self.misses} misses ({self.hit_rate:.0%}), {self.evictions} evicted"


def snapshot_delta(
    after: Mapping[str, tuple[int, int, int]], before: Mapping[str, tuple[int, int, int]]
) -> dict[str, tuple[int, int, int]]:
    """What one stretch of work did: ``after − before``, per cache layer.

    Both arguments are :meth:`EngineCache.snapshot` dictionaries; layers
    missing from *before* count from zero.
    """
    return {
        layer: tuple(value - before.get(layer, (0, 0, 0))[index] for index, value in enumerate(counts))
        for layer, counts in after.items()
    }


def merge_snapshots(
    snapshots: Iterable[Mapping[str, tuple[int, int, int]]]
) -> dict[str, tuple[int, int, int]]:
    """Sum per-layer ``(hits, misses, evictions)`` across many snapshots.

    This is the aggregation hook the parallel fuzz runner uses: each worker
    process reports the snapshot delta of its own process-wide cache, and
    the campaign report presents the fleet-wide totals.
    """
    totals: dict[str, list[int]] = {}
    for snapshot in snapshots:
        for layer, counts in snapshot.items():
            bucket = totals.setdefault(layer, [0, 0, 0])
            for index, value in enumerate(counts):
                bucket[index] += value
    return {layer: tuple(bucket) for layer, bucket in totals.items()}


def describe_snapshot(snapshot: Mapping[str, tuple[int, int, int]]) -> str:
    """Render a snapshot (typically a merged delta) as the usual stats lines."""
    lines = []
    for layer, (hits, misses, evictions) in snapshot.items():
        lines.append(f"{layer:<8} {CacheStats(hits=hits, misses=misses, evictions=evictions).describe()}")
    return "\n".join(lines)


class _LruLayer:
    """One bounded LRU mapping with its own statistics.

    When a :class:`~repro.engine.persist.PersistentCache` is attached, an
    in-memory miss consults the disk store before building (a persistent
    hit still counts as an in-memory miss — the layer statistics keep
    measuring this process's working set), and a freshly built entry is
    written through.  Eligibility and failure tolerance live entirely in
    the persistent tier; the layer never sees an exception from it.
    """

    __slots__ = ("name", "max_entries", "stats", "persistent", "_entries")

    def __init__(self, name: str, max_entries: int) -> None:
        self.name = name
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.persistent: PersistentCache | None = None
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def get_or_build(self, key: Hashable, build: Callable[[], object]) -> object:
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.stats.misses += 1
        if self.persistent is not None:
            loaded = self.persistent.load(self.name, key)
            if loaded is not MISS:
                self._entries[key] = loaded
                if len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                return loaded
        entry = build()
        self._entries[key] = entry
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        if self.persistent is not None:
            self.persistent.store(self.name, key, entry)
        return entry

    def drop(self, predicate: Callable[[Hashable], bool]) -> int:
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class EngineCache:
    """Memoisation for compiled plans, target indexes and scalar results."""

    #: Bound on remembered absorb tokens (see :meth:`absorb_delta`): far
    #: beyond any real campaign's chunk count, small enough to never matter.
    _MAX_ABSORB_TOKENS = 65536

    def __init__(self, max_plans: int = 512, max_indexes: int = 128, max_results: int = 4096) -> None:
        self._indexes = _LruLayer("indexes", max_indexes)
        self._plans = _LruLayer("plans", max_plans)
        self._results = _LruLayer("results", max_results)
        self._persistent: PersistentCache | None = None
        self._absorbed_tokens: OrderedDict[Hashable, None] = OrderedDict()

    # ------------------------------------------------------------------ #
    # The persistent tier
    # ------------------------------------------------------------------ #
    def attach_persistent(self, persistent: PersistentCache | None) -> None:
        """Back (or stop backing) this cache with a persistent tier.

        Only the plan and result layers consult the store — target indexes
        are cheap per-process rebuilds, and the persistent tier itself
        refuses entries keyed by process-local state (interned dictionary
        serials, compiled closures).  Passing ``None`` detaches.
        """
        self._persistent = persistent
        self._plans.persistent = persistent
        self._results.persistent = persistent

    @property
    def persistent(self) -> PersistentCache | None:
        """The attached persistent tier, if any."""
        return self._persistent

    @property
    def capacities(self) -> tuple[int, int, int]:
        """``(max_plans, max_indexes, max_results)`` — the constructor arguments.

        This is the cache's configuration fingerprint: a worker process can
        build a behaviourally equivalent cache from it without shipping any
        entries (see :class:`repro.session.SessionSpec`).
        """
        return (
            self._plans.max_entries,
            self._indexes.max_entries,
            self._results.max_entries,
        )

    # ------------------------------------------------------------------ #
    # Lookup / build
    # ------------------------------------------------------------------ #
    def target_index(self, target_atoms: Iterable[Atom]) -> TargetIndex:
        """The shared :class:`TargetIndex` for a target fingerprint."""
        target = tuple(target_atoms)
        key = atoms_fingerprint(target)
        return self._indexes.get_or_build(key, lambda: TargetIndex(target))  # type: ignore[return-value]

    def plan(
        self,
        source_atoms: tuple[Atom, ...],
        target_atoms: Iterable[Atom],
        fixed_variables: frozenset[Variable],
        template: JoinTemplate | None = None,
    ) -> MatchPlan:
        """The shared :class:`MatchPlan` for a ``(source, target, fixed)`` triple."""
        target = tuple(target_atoms)
        target_key = atoms_fingerprint(target)
        key = (atoms_fingerprint(source_atoms), target_key, fixed_variables)

        def build() -> MatchPlan:
            index = self.target_index(target)
            return compile_plan(source_atoms, target, fixed_variables, template=template, index=index)

        return self._plans.get_or_build(key, build)  # type: ignore[return-value]

    def result(self, key: Hashable, compute: Callable[[], object]) -> object:
        """Memoise a scalar (count/exists) result under an execution key."""
        return self._results.get_or_build(key, compute)

    # ------------------------------------------------------------------ #
    # Generic layer entries (alternate backends)
    # ------------------------------------------------------------------ #
    def index_entry(self, key: Hashable, build: Callable[[], object]) -> object:
        """Memoise an arbitrary per-target artefact in the index layer.

        Alternate backends (the interned engine) store their own target
        representations here so they share the layer's LRU bound, statistics
        and invalidation with the classic :class:`TargetIndex` entries.
        Tuple keys must put the target fingerprint first — that is what
        :meth:`invalidate` matches on.
        """
        return self._indexes.get_or_build(key, build)

    def plan_entry(self, key: Hashable, build: Callable[[], object]) -> object:
        """Memoise an arbitrary compiled plan in the plan layer.

        Tuple keys must put the target fingerprint second (matching the
        classic plan keys), so :meth:`invalidate` covers them.
        """
        return self._plans.get_or_build(key, build)

    # ------------------------------------------------------------------ #
    # Invalidation / introspection
    # ------------------------------------------------------------------ #
    def invalidate(self, target_atoms: Iterable[Atom] | None = None) -> int:
        """Drop cached entries touching *target_atoms* (or everything).

        Returns the number of entries dropped.  The engine's value objects
        are immutable, so invalidation is never needed for correctness; it
        exists for long-running services that want to bound memory ahead of
        the LRU or that recycle instance identities.
        """
        if target_atoms is None:
            dropped = len(self._indexes) + len(self._plans) + len(self._results)
            self.clear()
            if self._persistent is not None:
                dropped += self._persistent.clear()
            return dropped
        target_key = atoms_fingerprint(target_atoms)
        dropped = self._indexes.drop(
            lambda key: key == target_key
            or (isinstance(key, tuple) and len(key) > 0 and key[0] == target_key)
        )
        # Classic plan keys and interned/generated plan_entry keys both put
        # the target fingerprint second; the isinstance/length guard keeps
        # exotic plan_entry keys from crashing the sweep (they simply stay).
        dropped += self._plans.drop(
            lambda key: isinstance(key, tuple) and len(key) > 1 and key[1] == target_key
        )
        dropped += self._results.drop(
            lambda key: isinstance(key, tuple) and len(key) > 1 and key[1] == target_key
        )
        if self._persistent is not None:
            dropped += self._persistent.invalidate_target(target_key)
        return dropped

    def clear(self) -> None:
        """Drop every cached entry (statistics are preserved)."""
        self._indexes.clear()
        self._plans.clear()
        self._results.clear()

    def reset_stats(self) -> None:
        """Zero all hit/miss/eviction counters."""
        for layer in (self._indexes, self._plans, self._results):
            layer.stats = CacheStats()

    def absorb_delta(
        self, delta: Mapping[str, tuple[int, int, int]], token: Hashable | None = None
    ) -> bool:
        """Fold another cache's ``(hits, misses, evictions)`` delta into the stats.

        This is the merge hook of the parallel batch layer: worker processes
        run their own caches and ship back :func:`snapshot_delta` dictionaries,
        and the parent folds them in so the session's cache statistics reflect
        the whole fleet's work.  Only the counters move — entries stay where
        they were built (worker caches die with the workers).

        Absorption is idempotent per *token*: a chunk retried after a worker
        failure (or a delta accidentally replayed by a caller) is folded in
        once — repeats return ``False`` without touching the counters.  A
        ``None`` token skips the bookkeeping (legacy unconditional fold).
        Returns whether the delta was absorbed.
        """
        if token is not None:
            if token in self._absorbed_tokens:
                return False
            self._absorbed_tokens[token] = None
            if len(self._absorbed_tokens) > self._MAX_ABSORB_TOKENS:
                self._absorbed_tokens.popitem(last=False)
        by_name = {layer.name: layer for layer in (self._plans, self._indexes, self._results)}
        for name, (hits, misses, evictions) in delta.items():
            layer = by_name.get(name)
            if layer is None:
                continue
            layer.stats.hits += hits
            layer.stats.misses += misses
            layer.stats.evictions += evictions
        return True

    @property
    def plan_stats(self) -> CacheStats:
        return self._plans.stats

    @property
    def index_stats(self) -> CacheStats:
        return self._indexes.stats

    @property
    def result_stats(self) -> CacheStats:
        return self._results.stats

    def snapshot(self) -> dict[str, tuple[int, int, int]]:
        """Current ``(hits, misses, evictions)`` per layer, for delta reports."""
        return {
            layer.name: (layer.stats.hits, layer.stats.misses, layer.stats.evictions)
            for layer in (self._plans, self._indexes, self._results)
        }

    def describe(self, since: Mapping[str, tuple[int, int, int]] | None = None) -> str:
        """A compact multi-line stats report (used by ``--engine-stats``).

        With *since* (a :meth:`snapshot` taken earlier) the hit/miss/eviction
        counters are reported as deltas, so callers can show what one command
        did rather than the process-lifetime totals of the shared cache.
        """
        lines = []
        for layer in (self._plans, self._indexes, self._results):
            hits, misses, evictions = layer.stats.hits, layer.stats.misses, layer.stats.evictions
            if since is not None:
                base = since.get(layer.name, (0, 0, 0))
                hits, misses, evictions = hits - base[0], misses - base[1], evictions - base[2]
            window = CacheStats(hits=hits, misses=misses, evictions=evictions)
            lines.append(f"{layer.name:<8} {len(layer)} entries, {window.describe()}")
        if self._persistent is not None:
            lines.append(self._persistent.describe())
        return "\n".join(lines)
