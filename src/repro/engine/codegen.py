"""Closure generation for the ``generated`` backend: one function per plan.

The interned executor is already integer-only, but it is still an
*interpreter*: every row pays the per-step dispatch (filter or join? packed
key or bucket scan?), the trail bookkeeping, and a fresh iterator object per
descent.  This module removes all of that by compiling a plan suffix into
**one Python function** — the join steps become nested ``for`` loops, slot
bindings become local variables, packed-key arithmetic is emitted with the
shift amounts and constant term ids baked in as literals, and probes whose
keys are fully constant are resolved to a static row tuple at compile time.
The only remaining per-probe work is exactly the work the data demands: a
dictionary ``get``, the selectivity counter ticks (which the adaptive
replanner feeds on), and the loop body.

Three flavours share one emitter, differing only in their terminal action:

``count``
    ``fn(binding) -> int`` — the number of solutions in the subtree.  When
    the innermost step binds only distinct fresh slots, the loop collapses
    to ``total += len(rows)``.
``exists``
    ``fn(binding) -> bool`` — ``return True`` from the innermost loop exits
    the whole nest at the first witness, with no unwinding machinery.
``collect``
    ``fn(binding, emit) -> None`` — calls ``emit(solution_tuple)`` once per
    solution, where the tuple lists every slot's term id (``-1`` for slots
    the plan never binds).

Generated functions never backtrack explicitly: loop locals are simply
overwritten by the next row, which is what makes the emitted code both
correct and fast.  A duplicated fresh variable inside one atom compiles to a
row-level equality check (both occurrences come from the same candidate
row), so cross-iteration state never leaks.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.engine.interned import InternedStep
from repro.engine.interning import ID_BITS

__all__ = ["compile_static", "compile_suffix"]

#: The three terminal flavours the emitter knows how to close a nest with.
MODES = ("count", "exists", "collect")


def _split_new_ops(
    new_ops: Sequence[tuple[int, int]],
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Split ``(position, slot)`` ops into first-occurrence binds and checks.

    A fresh variable repeated inside one atom contributes one bind (its
    first position) plus one ``(first, later)`` position pair per repeat;
    the emitted check compares two cells of the *same* row, so no binding
    state is involved at all.
    """
    binds: list[tuple[int, int]] = []
    checks: list[tuple[int, int]] = []
    first_position: dict[int, int] = {}
    for position, slot in new_ops:
        seen = first_position.get(slot)
        if seen is None:
            first_position[slot] = position
            binds.append((position, slot))
        else:
            checks.append((seen, position))
    return binds, checks


def _entry_slots(steps: Sequence[InternedStep]) -> list[int]:
    """Slots the suffix reads from ``binding`` (bound before the suffix runs)."""
    assigned: set[int] = set()
    needed: set[int] = set()
    for step in steps:
        for op in step.key_ops:
            if op >= 0 and op not in assigned:
                needed.add(op)
        for _, slot in step.new_ops:
            assigned.add(slot)
    return sorted(needed)


def compile_static(steps: Sequence[InternedStep]) -> Callable[[list], bool]:
    """Compile the hoisted static filters into one straight-line function.

    Static filter keys read only constants and pre-fixed slots, so the
    generated body is a flat sequence of probes — fully constant keys are
    resolved to their row tuple at compile time — each followed by its
    counter ticks and an early ``return False``.  Long projection-free
    containment folds (the E7 chain family) are *nothing but* this pass,
    which is why it is generated rather than interpreted.
    """
    env: dict[str, object] = {"_E": ()}
    lines: list[str] = ["def _run(binding):"]
    for index, step in enumerate(steps):
        rows = f"rows{index}"
        key_ops = step.key_ops
        if step.group is None:
            env[f"B{index}"] = step.bucket
            lines.append(f"    {rows} = B{index}")
        elif all(op < 0 for op in key_ops):
            packed = 0
            for op in key_ops:
                packed = (packed << ID_BITS) | (-1 - op)
            env[f"B{index}"] = step.group.get(packed, ())
            lines.append(f"    {rows} = B{index}")
        else:
            env[f"G{index}"] = step.group.get
            parts = [f"binding[{op}]" if op >= 0 else str(-1 - op) for op in key_ops]
            expression = parts[0]
            for part in parts[1:]:
                expression = f"({expression} << {ID_BITS} | {part})"
            lines.append(f"    {rows} = G{index}({expression}, _E)")
        env[f"C{index}"] = step.counter
        lines.append(f"    C{index}[0] += 1")
        lines.append(f"    C{index}[1] += len({rows})")
        lines.append(f"    if not {rows}:")
        lines.append("        return False")
    lines.append("    return True")
    exec("\n".join(lines), env)  # noqa: S102 - the source is fully synthesized above
    function = env["_run"]
    function.__source__ = "\n".join(lines)  # type: ignore[attr-defined]
    return function  # type: ignore[return-value]


def compile_suffix(
    steps: Sequence[InternedStep],
    mode: str,
    num_slots: int,
) -> Callable:
    """Compile a plan suffix into one specialized function.

    *steps* run in the given order inside a single nested-loop function;
    *num_slots* is the plan's full slot count (the ``collect`` flavour emits
    complete solution tuples, so it reads every slot at entry).  The
    function reads pre-bound slots from ``binding`` once, in a prologue, and
    never writes ``binding`` — the caller's slot state is untouched.
    """
    if mode not in MODES:
        raise ValueError(f"unknown codegen mode {mode!r}; expected one of {MODES}")

    env: dict[str, object] = {"_E": ()}
    lines: list[str] = []
    signature = "binding, emit" if mode == "collect" else "binding"
    lines.append(f"def _run({signature}):")

    # Prologue: hoist the pre-bound slots into locals.  ``collect`` reads
    # every slot because its terminal emits the full solution tuple
    # (never-bound slots stay at the caller's -1 and are dropped when the
    # substitution is materialised).
    entry = range(num_slots) if mode == "collect" else _entry_slots(steps)
    for slot in entry:
        lines.append(f"    v{slot} = binding[{slot}]")
    if mode == "count":
        lines.append("    total = 0")

    if mode == "collect":
        solution = ", ".join(f"v{slot}" for slot in range(num_slots))
        terminal = f"emit(({solution},))" if num_slots else "emit(())"
    elif mode == "count":
        terminal = "total += 1"
    else:
        terminal = "return True"

    depth = 1
    last_index = len(steps) - 1
    for index, step in enumerate(steps):
        pad = "    " * depth
        last = index == last_index
        rows = f"rows{index}"

        # --- Probe: how this step's candidate rows are obtained. ----------
        key_ops = step.key_ops
        if step.group is None:
            # Empty signature: the whole bucket, baked in as a constant.
            env[f"B{index}"] = step.bucket
            lines.append(f"{pad}{rows} = B{index}")
        elif all(op < 0 for op in key_ops):
            # Fully constant key: resolve the probe at compile time.
            packed = 0
            for op in key_ops:
                packed = (packed << ID_BITS) | (-1 - op)
            env[f"B{index}"] = step.group.get(packed, ())
            lines.append(f"{pad}{rows} = B{index}")
        else:
            env[f"G{index}"] = step.group.get
            parts = [f"v{op}" if op >= 0 else str(-1 - op) for op in key_ops]
            expression = parts[0]
            for part in parts[1:]:
                expression = f"({expression} << {ID_BITS} | {part})"
            lines.append(f"{pad}{rows} = G{index}({expression}, _E)")

        # Selectivity counters feed the planner and the adaptive replanner,
        # so every flavour ticks them exactly like the interpreter does.
        env[f"C{index}"] = step.counter
        lines.append(f"{pad}C{index}[0] += 1")
        lines.append(f"{pad}C{index}[1] += len({rows})")

        binds, checks = _split_new_ops(step.new_ops)

        # --- Terminal short-circuits on the innermost step. ---------------
        if last and mode == "count" and not checks:
            if binds:
                # Distinct fresh slots: every candidate row is a solution.
                lines.append(f"{pad}total += len({rows})")
            else:
                lines.append(f"{pad}if {rows}:")
                lines.append(f"{pad}    total += 1")
            continue
        if last and mode == "exists" and not checks:
            lines.append(f"{pad}if {rows}:")
            lines.append(f"{pad}    return True")
            continue

        # --- The general nest: filter gate or candidate-row loop. ---------
        if not step.new_ops:
            # Filter: a full-signature membership probe, one candidate max.
            lines.append(f"{pad}if {rows}:")
            depth += 1
            pad = "    " * depth
        else:
            lines.append(f"{pad}for row{index} in {rows}:")
            depth += 1
            pad = "    " * depth
            for first, later in checks:
                lines.append(f"{pad}if row{index}[{first}] != row{index}[{later}]:")
                lines.append(f"{pad}    continue")
            if last and mode != "collect":
                # Scalar terminals never read the last step's fresh slots.
                pass
            else:
                for position, slot in binds:
                    lines.append(f"{pad}v{slot} = row{index}[{position}]")
        if last:
            lines.append(f"{pad}{terminal}")

    if not steps:
        # Empty suffix: the caller's binding is already a full solution.
        if mode == "count":
            lines.append("    return 1")
        elif mode == "exists":
            lines.append("    return True")
        else:
            lines.append(f"    {terminal}")
    elif mode == "count":
        lines.append("    return total")
    elif mode == "exists":
        lines.append("    return False")

    exec("\n".join(lines), env)  # noqa: S102 - the source is fully synthesized above
    function = env["_run"]
    function.__source__ = "\n".join(lines)  # type: ignore[attr-defined]
    return function  # type: ignore[return-value]
