"""Canonical fingerprints used as engine-cache keys.

Cache keys must be cheap to compute, hashable, and collision-free for the
value objects the engine works with.  Three granularities are provided:

* :func:`atoms_fingerprint` — an order-insensitive key for a collection of
  atoms (sources and targets are semantically sets once deduplicated, so two
  call sites passing the same atoms in different orders share cache entries);
* :func:`instance_fingerprint` — the key of a set or bag instance (the bag's
  multiplicities are irrelevant to homomorphism enumeration, so a bag keys
  by its support);
* :func:`query_fingerprint` — a structural key for a conjunctive query:
  variables are replaced by integers assigned through a name-free iterative
  refinement, so renaming-isomorphic queries share a fingerprint whenever
  the refinement resolves all atom ties (equal fingerprints always imply
  isomorphism, which is the direction caching soundness needs).

The in-memory keys above are hashable value objects: equal across
processes, but *serialized* differently per process (frozenset iteration
order follows the randomized string hash).  The persistent cache tier
(:mod:`repro.engine.persist`) therefore keys its rows by
:func:`persistent_digest` — a SHA-256 over an explicitly sorted, explicitly
serialized rendering of the same structures that never consults ``hash()``
or container iteration order, so the digest of a key is identical in every
process regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Iterable, Mapping

from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.terms import CanonicalConstant, Constant, Variable

__all__ = [
    "UnpersistableKeyError",
    "atoms_fingerprint",
    "instance_fingerprint",
    "persistent_digest",
    "query_fingerprint",
]


def atoms_fingerprint(atoms: Iterable[Atom]) -> frozenset[Atom]:
    """An order-insensitive, hashable key for a collection of atoms."""
    return frozenset(atoms)


def instance_fingerprint(instance: SetInstance | BagInstance | Iterable[Atom]) -> frozenset[Atom]:
    """The cache key of an instance: the frozenset of its (support) facts."""
    if isinstance(instance, SetInstance):
        return instance.facts
    if isinstance(instance, BagInstance):
        return instance.support().facts
    return frozenset(instance)


#: Body size above which the canonical search falls back to a greedy pass.
_CANONICAL_SEARCH_LIMIT = 8


def _rendered(atom: Atom, multiplicity: int, assignment: Mapping[Variable, int]) -> tuple:
    """One body atom rendered under *assignment*, extending it for new variables.

    New variables are numbered by first appearance inside this atom, offset
    past the existing assignment — entirely name-free, so two atoms that are
    images of each other under a renaming respecting *assignment* render
    identically.
    """
    local: dict[Variable, int] = {}
    terms = []
    for term in atom.terms:
        if isinstance(term, Variable):
            index = assignment.get(term)
            if index is None:
                index = local.setdefault(term, len(assignment) + len(local))
            terms.append((0, index, ""))
        else:
            terms.append((1, 0, f"{type(term).__name__}:{term}"))
    return (atom.relation, tuple(terms), multiplicity)


def query_fingerprint(query: ConjunctiveQuery) -> tuple:
    """A canonical structural fingerprint of a conjunctive query.

    Variables are replaced by integers chosen without ever consulting their
    names: head variables are numbered by head position, then the body is
    laid out as the lexicographically smallest rendering reachable by
    picking atoms one at a time (branching on ties, numbering fresh
    variables by first appearance).  Two queries share a fingerprint iff
    they are identical up to a bijective variable renaming — the soundness
    direction (equal implies isomorphic) always holds, and the converse
    holds up to the ``_CANONICAL_SEARCH_LIMIT`` body-size cap, beyond which
    a greedy single-pass layout is used (still sound, merely pickier).
    """
    items = list(query.body.items())

    base: dict[Variable, int] = {}
    for variable in query.head:
        base.setdefault(variable, len(base))

    def extend(assignment: dict[Variable, int], atom: Atom) -> dict[Variable, int]:
        extended = dict(assignment)
        for term in atom.terms:
            if isinstance(term, Variable) and term not in extended:
                extended[term] = len(extended)
        return extended

    best: list[tuple] | None = None

    def search(remaining: list[tuple[Atom, int]], assignment: dict[Variable, int], acc: list[tuple]) -> None:
        nonlocal best
        if best is not None and acc > best[: len(acc)]:
            return
        if not remaining:
            body = list(acc)
            if best is None or body < best:
                best = body
            return
        rendered = [(_rendered(atom, mult, assignment), index) for index, (atom, mult) in enumerate(remaining)]
        smallest = min(key for key, _ in rendered)
        for key, index in rendered:
            if key != smallest:
                continue
            atom, mult = remaining[index]
            search(
                remaining[:index] + remaining[index + 1 :],
                extend(assignment, atom),
                acc + [key],
            )

    if len(items) <= _CANONICAL_SEARCH_LIMIT:
        search(items, base, [])
        assert best is not None
        body = tuple(best)
    else:
        # Greedy fallback: always take the first minimal rendering.  Still
        # name-free and sound, but symmetric ties may split an isomorphism
        # class across fingerprints.
        assignment = dict(base)
        remaining = list(items)
        acc: list[tuple] = []
        while remaining:
            rendered = [(_rendered(atom, mult, assignment), index) for index, (atom, mult) in enumerate(remaining)]
            key, index = min(rendered)
            atom, _ = remaining.pop(index)
            assignment = extend(assignment, atom)
            acc.append(key)
        body = tuple(acc)

    head = tuple(base[variable] for variable in query.head)
    return (head, body)


# --------------------------------------------------------------------- #
# Cross-process-stable digests (the persistent cache tier's key space)
# --------------------------------------------------------------------- #
class UnpersistableKeyError(TypeError):
    """A cache key contains a component with no canonical serialization.

    The persistent tier treats such keys as in-memory-only (it skips the
    store rather than persisting under an unstable key); tests use the
    exception directly.
    """


def _encode_canonical(obj: object) -> bytes:
    """A canonical byte rendering of a (nested) cache-key structure.

    Every container is explicitly ordered before serialization — sets and
    dicts are sorted by the encodings of their elements, never iterated in
    hash order — and every leaf is rendered from its named fields, never
    from ``hash()``.  Two processes with different ``PYTHONHASHSEED`` (or
    different interpreter builds) therefore always produce identical
    encodings for equal keys, which is what makes cross-process persistent
    lookups hit instead of silently missing (or, with an unlucky seed
    collision, matching the wrong row).
    """
    if obj is None:
        return b"N"
    if obj is True:
        return b"T"
    if obj is False:
        return b"F"
    kind = type(obj)
    if kind is int:
        return b"i" + repr(obj).encode()
    if kind is float:
        return b"f" + repr(obj).encode()
    if kind is str:
        encoded = obj.encode("utf-8")
        return b"s" + repr(len(encoded)).encode() + b":" + encoded
    if kind is bytes:
        return b"b" + repr(len(obj)).encode() + b":" + obj
    if kind is Variable:
        return b"V(" + _encode_canonical(obj.name) + b")"
    if kind is Constant:
        return b"C(" + _encode_canonical(obj.value) + b")"
    if kind is CanonicalConstant:
        return b"K(" + _encode_canonical(obj.variable_name) + b")"
    if kind is Atom:
        return (
            b"A("
            + _encode_canonical(obj.relation)
            + b","
            + b",".join(_encode_canonical(term) for term in obj.terms)
            + b")"
        )
    if kind is ConjunctiveQuery:
        # Name + head variable names + body sorted by encoded atom: the
        # exact information query __eq__ compares (plus the display name,
        # which memoised results embed through their certificates).
        body = sorted(
            (_encode_canonical(atom), multiplicity) for atom, multiplicity in obj.body.items()
        )
        return (
            b"Q("
            + _encode_canonical(obj.name)
            + b";"
            + b",".join(_encode_canonical(variable) for variable in obj.head)
            + b";"
            + b",".join(atom + b"*" + repr(mult).encode() for atom, mult in body)
            + b")"
        )
    if kind in (tuple, list):
        return b"t(" + b",".join(_encode_canonical(item) for item in obj) + b")"
    if kind in (frozenset, set):
        return b"S(" + b",".join(sorted(_encode_canonical(item) for item in obj)) + b")"
    if kind is dict:
        items = sorted(
            (_encode_canonical(key), _encode_canonical(value)) for key, value in obj.items()
        )
        return b"d(" + b",".join(key + b"=" + value for key, value in items) + b")"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # Frozen request/limits dataclasses: class name + named fields.
        parts = [
            _encode_canonical(field.name) + b"=" + _encode_canonical(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        ]
        return b"D(" + _encode_canonical(type(obj).__name__) + b";" + b",".join(parts) + b")"
    raise UnpersistableKeyError(
        f"no canonical serialization for cache-key component of type {type(obj).__name__}"
    )


def persistent_digest(obj: object) -> str:
    """The cross-process-stable SHA-256 hex digest of a cache-key structure.

    Raises :class:`UnpersistableKeyError` when *obj* contains a component
    without a canonical serialization (e.g. a compiled closure, or a
    process-local interning serial); callers treat such keys as
    in-memory-only.
    """
    return hashlib.sha256(_encode_canonical(obj)).hexdigest()
