"""Top-level engine entry points used by the rewired library layers.

These functions are the atoms-level face of the engine: they resolve the
process-wide default backend (or an explicit one), so the evaluation,
containment, encoding and baseline layers stay backend-agnostic.  The
query-level conveniences (head unification, probe handling) remain where
they always lived — in :mod:`repro.evaluation` — and bottom out here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.engine.backends import Backend, get_default_backend
from repro.relational.atoms import Atom
from repro.relational.substitutions import Substitution
from repro.relational.terms import Term, Variable

__all__ = ["iterate_homomorphisms", "count_homomorphisms", "has_homomorphism"]


def iterate_homomorphisms(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed: Mapping[Variable, Term] | None = None,
    backend: Backend | None = None,
) -> Iterator[Substitution]:
    """Enumerate all homomorphisms from *source_atoms* into *target_atoms*."""
    resolved = backend if backend is not None else get_default_backend()
    return resolved.iterate(source_atoms, target_atoms, fixed)


def count_homomorphisms(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed: Mapping[Variable, Term] | None = None,
    backend: Backend | None = None,
) -> int:
    """Number of homomorphisms, computed in ``count`` mode (no substitutions)."""
    resolved = backend if backend is not None else get_default_backend()
    return resolved.count(source_atoms, target_atoms, fixed)


def has_homomorphism(
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    fixed: Mapping[Variable, Term] | None = None,
    backend: Backend | None = None,
) -> bool:
    """``True`` when at least one homomorphism exists (early-exit ``exists`` mode)."""
    resolved = backend if backend is not None else get_default_backend()
    return resolved.exists(source_atoms, target_atoms, fixed)
