"""JSON (de)serialisation of the library's value objects.

Workloads, regression corpora and decision results need to be stored and
exchanged; this module provides a stable, versioned JSON representation for
terms, atoms, queries, set/bag instances, answer bags and containment
results, together with file helpers.

The encoding is intentionally explicit (every object carries a ``"kind"``
tag) so files remain readable and future-proof::

    {"kind": "cq", "name": "q", "head": [...], "body": [{"atom": ..., "multiplicity": 2}]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.certificates import ContainmentCounterexample
from repro.core.decision import BagContainmentResult
from repro.evaluation.bag_evaluation import AnswerBag
from repro.exceptions import ReproError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.terms import CanonicalConstant, Constant, Term, Variable

__all__ = [
    "term_to_dict",
    "term_from_dict",
    "atom_to_dict",
    "atom_from_dict",
    "query_to_dict",
    "query_from_dict",
    "pair_to_dict",
    "pair_from_dict",
    "ucq_to_dict",
    "ucq_from_dict",
    "set_instance_to_dict",
    "set_instance_from_dict",
    "bag_instance_to_dict",
    "bag_instance_from_dict",
    "answer_bag_to_dict",
    "counterexample_to_dict",
    "counterexample_from_dict",
    "result_to_dict",
    "dump_json",
    "load_json",
    "save_queries",
    "load_queries",
]

#: Format version written into every top-level document.
FORMAT_VERSION = 1


class SerializationError(ReproError):
    """Raised when a JSON document cannot be decoded into library objects."""


# --------------------------------------------------------------------------- #
# Terms
# --------------------------------------------------------------------------- #
def term_to_dict(term: Term) -> dict[str, Any]:
    """Encode a term as a tagged dictionary."""
    if isinstance(term, Variable):
        return {"kind": "variable", "name": term.name}
    if isinstance(term, CanonicalConstant):
        return {"kind": "canonical", "variable": term.variable_name}
    if isinstance(term, Constant):
        return {"kind": "constant", "value": term.value}
    raise SerializationError(f"cannot serialise term {term!r}")


def term_from_dict(document: dict[str, Any]) -> Term:
    """Decode a term from its tagged dictionary."""
    kind = document.get("kind")
    if kind == "variable":
        return Variable(document["name"])
    if kind == "canonical":
        return CanonicalConstant(document["variable"])
    if kind == "constant":
        return Constant(document["value"])
    raise SerializationError(f"unknown term kind {kind!r}")


# --------------------------------------------------------------------------- #
# Atoms and instances
# --------------------------------------------------------------------------- #
def atom_to_dict(atom: Atom) -> dict[str, Any]:
    """Encode an atom."""
    return {
        "kind": "atom",
        "relation": atom.relation,
        "terms": [term_to_dict(term) for term in atom.terms],
    }


def atom_from_dict(document: dict[str, Any]) -> Atom:
    """Decode an atom."""
    if document.get("kind") != "atom":
        raise SerializationError(f"expected an atom document, got {document.get('kind')!r}")
    return Atom(document["relation"], tuple(term_from_dict(term) for term in document["terms"]))


def set_instance_to_dict(instance: SetInstance) -> dict[str, Any]:
    """Encode a set instance."""
    return {"kind": "set_instance", "facts": [atom_to_dict(fact) for fact in instance]}


def set_instance_from_dict(document: dict[str, Any]) -> SetInstance:
    """Decode a set instance."""
    if document.get("kind") != "set_instance":
        raise SerializationError("expected a set_instance document")
    return SetInstance(atom_from_dict(fact) for fact in document["facts"])


def bag_instance_to_dict(bag: BagInstance) -> dict[str, Any]:
    """Encode a bag instance."""
    return {
        "kind": "bag_instance",
        "facts": [
            {"atom": atom_to_dict(fact), "multiplicity": count} for fact, count in bag.items()
        ],
    }


def bag_instance_from_dict(document: dict[str, Any]) -> BagInstance:
    """Decode a bag instance."""
    if document.get("kind") != "bag_instance":
        raise SerializationError("expected a bag_instance document")
    return BagInstance(
        {atom_from_dict(entry["atom"]): int(entry["multiplicity"]) for entry in document["facts"]}
    )


# --------------------------------------------------------------------------- #
# Queries
# --------------------------------------------------------------------------- #
def query_to_dict(query: ConjunctiveQuery) -> dict[str, Any]:
    """Encode a conjunctive query (head, body multiplicities, name)."""
    return {
        "kind": "cq",
        "name": query.name,
        "head": [term_to_dict(variable) for variable in query.head],
        "body": [
            {"atom": atom_to_dict(atom), "multiplicity": multiplicity}
            for atom, multiplicity in query.body.items()
        ],
    }


def query_from_dict(document: dict[str, Any]) -> ConjunctiveQuery:
    """Decode a conjunctive query."""
    if document.get("kind") != "cq":
        raise SerializationError(f"expected a cq document, got {document.get('kind')!r}")
    head = []
    for entry in document["head"]:
        term = term_from_dict(entry)
        if not isinstance(term, Variable):
            raise SerializationError(f"head positions must decode to variables, got {term!r}")
        head.append(term)
    body = {
        atom_from_dict(entry["atom"]): int(entry["multiplicity"]) for entry in document["body"]
    }
    return ConjunctiveQuery(tuple(head), body, name=document.get("name", "q"))


def pair_to_dict(containee: ConjunctiveQuery, containing: ConjunctiveQuery) -> dict[str, Any]:
    """Encode a (containee, containing) containment pair."""
    return {
        "kind": "pair",
        "containee": query_to_dict(containee),
        "containing": query_to_dict(containing),
    }


def pair_from_dict(document: dict[str, Any]) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """Decode a (containee, containing) containment pair."""
    if document.get("kind") != "pair":
        raise SerializationError(f"expected a pair document, got {document.get('kind')!r}")
    return query_from_dict(document["containee"]), query_from_dict(document["containing"])


def ucq_to_dict(ucq: UnionOfConjunctiveQueries) -> dict[str, Any]:
    """Encode a union of conjunctive queries."""
    return {
        "kind": "ucq",
        "name": ucq.name,
        "disjuncts": [query_to_dict(disjunct) for disjunct in ucq],
    }


def ucq_from_dict(document: dict[str, Any]) -> UnionOfConjunctiveQueries:
    """Decode a union of conjunctive queries."""
    if document.get("kind") != "ucq":
        raise SerializationError("expected a ucq document")
    return UnionOfConjunctiveQueries(
        [query_from_dict(entry) for entry in document["disjuncts"]],
        name=document.get("name", "Q"),
    )


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
def answer_bag_to_dict(answers: AnswerBag) -> dict[str, Any]:
    """Encode an answer bag as a list of (tuple, multiplicity) entries."""
    return {
        "kind": "answer_bag",
        "answers": [
            {"tuple": [term_to_dict(term) for term in answer], "multiplicity": count}
            for answer, count in answers.items()
        ],
    }


def counterexample_to_dict(certificate: ContainmentCounterexample) -> dict[str, Any]:
    """Encode a counterexample certificate."""
    return {
        "kind": "counterexample",
        "probe": [term_to_dict(term) for term in certificate.probe],
        "bag": bag_instance_to_dict(certificate.bag),
        "containee_multiplicity": certificate.containee_multiplicity,
        "containing_multiplicity": certificate.containing_multiplicity,
    }


def counterexample_from_dict(document: dict[str, Any]) -> ContainmentCounterexample:
    """Decode a counterexample certificate."""
    if document.get("kind") != "counterexample":
        raise SerializationError("expected a counterexample document")
    return ContainmentCounterexample(
        probe=tuple(term_from_dict(term) for term in document["probe"]),
        bag=bag_instance_from_dict(document["bag"]),
        containee_multiplicity=int(document["containee_multiplicity"]),
        containing_multiplicity=int(document["containing_multiplicity"]),
    )


def result_to_dict(result: BagContainmentResult) -> dict[str, Any]:
    """Encode a containment result (verdict, strategy, reason, certificate).

    The MPI encodings are summarised (dimensions and mapping counts) rather
    than fully serialised: they can be regenerated from the queries.
    """
    return {
        "kind": "bag_containment_result",
        "version": FORMAT_VERSION,
        "contained": result.contained,
        "strategy": result.strategy,
        "reason": result.reason,
        "containee": query_to_dict(result.containee),
        "containing": query_to_dict(result.containing),
        "counterexample": (
            counterexample_to_dict(result.counterexample)
            if result.counterexample is not None
            else None
        ),
        "encodings": [
            {
                "probe": [term_to_dict(term) for term in encoding.probe],
                "dimension": encoding.dimension,
                "num_mappings": encoding.num_mappings,
            }
            for encoding in result.encodings
        ],
    }


# --------------------------------------------------------------------------- #
# File helpers
# --------------------------------------------------------------------------- #
def dump_json(document: dict[str, Any], path: str | Path) -> Path:
    """Write a document to *path* with a stable, human-readable layout."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a JSON document from *path*."""
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} does not contain valid JSON: {exc}") from exc


def save_queries(queries: list[ConjunctiveQuery], path: str | Path) -> Path:
    """Persist a list of queries (a workload) to a JSON file."""
    document = {
        "kind": "workload",
        "version": FORMAT_VERSION,
        "queries": [query_to_dict(query) for query in queries],
    }
    return dump_json(document, path)


def load_queries(path: str | Path) -> list[ConjunctiveQuery]:
    """Load a workload previously written by :func:`save_queries`."""
    document = load_json(path)
    if document.get("kind") != "workload":
        raise SerializationError(f"{path} is not a workload file")
    return [query_from_dict(entry) for entry in document["queries"]]
