"""The fault-injection plane: sites, rules, plans, and the armed context.

The subsystem is deliberately split in two halves:

* **Declaration** — a :class:`FaultPlan` is a frozen, picklable value: a seed
  plus a tuple of :class:`FaultRule` schedules, each bound to one registered
  :class:`FaultSite`.  Because it is a plain value, ``SessionSpec`` ships it
  to pool workers exactly like limits and cache capacities, so a chaos
  campaign under ``jobs=2`` injects the *same* faults in every process.

* **Arming** — :class:`ActiveFaults` is the mutable per-process holder built
  from a plan: per-rule seeded RNG streams, hit/fired counters, and a fired
  log.  It is published through a :class:`contextvars.ContextVar`, so sites
  compile down to one context-variable read (returning ``None``) when no
  plan is armed — the production hot path pays nothing beyond that.

Determinism contract: rules that can change an outcome (worker crashes,
deadline latency) should be **keyed** — bound to explicit absolute request
indices via ``keys=...`` — so firing does not depend on pool scheduling.
Probabilistic (stream-driven) rules are reserved for faults the hardened
runtime fully absorbs (persist-tier errors), where firing order affects
statistics but never verdicts.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import FaultError

__all__ = [
    "SITES",
    "ActiveFaults",
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "active_faults",
    "check",
    "current_request_key",
    "request_scope",
    "site_names",
    "use_faults",
]


@dataclass(frozen=True)
class FaultSite:
    """One named injection point at an I/O or process boundary.

    ``actions`` is the closed set of fault kinds the surrounding code knows
    how to apply at this site; a rule naming any other action is rejected at
    plan-construction time rather than silently ignored at runtime.
    """

    name: str
    boundary: str
    description: str
    actions: tuple[str, ...]


#: Every registered injection site.  ``docs/faults.md`` documents each one;
#: keep the two in sync.
SITES: tuple[FaultSite, ...] = (
    FaultSite(
        name="persist.connect",
        boundary="sqlite",
        description="opening the persistent store (connect + schema DDL)",
        actions=("error", "latency"),
    ),
    FaultSite(
        name="persist.load",
        boundary="sqlite",
        description="reading one entry from the persistent store",
        actions=("error", "busy", "latency"),
    ),
    FaultSite(
        name="persist.store",
        boundary="sqlite",
        description="writing one entry to the persistent store",
        actions=("error", "busy", "torn-write", "latency"),
    ),
    FaultSite(
        name="parallel.request",
        boundary="process",
        description="per-request execution inside a pool worker",
        actions=("crash", "hang"),
    ),
    FaultSite(
        name="session.execute",
        boundary="session",
        description="request admission inside Session._execute, within the deadline scope",
        actions=("latency",),
    ),
    FaultSite(
        name="executor.start",
        boundary="engine",
        description="start of one engine driver-loop execution",
        actions=("latency",),
    ),
    FaultSite(
        name="executor.tick",
        boundary="engine",
        description="periodic driver-loop tick (every N rows)",
        actions=("latency",),
    ),
)


def site_names() -> tuple[str, ...]:
    """The registered site names, in registration order."""
    return tuple(site.name for site in SITES)


def _site(name: str) -> FaultSite:
    for candidate in SITES:
        if candidate.name == name:
            return candidate
    raise FaultError(
        f"unknown fault site {name!r}; registered sites: {', '.join(site_names())}"
    )


@dataclass(frozen=True)
class FaultRule:
    """One firing schedule bound to a site.

    ``probability`` gates each eligible hit through the rule's seeded RNG
    stream; ``after`` skips the first N hits; ``count`` caps total firings
    (``None`` = unlimited); ``keys`` restricts the rule to explicit request
    keys (see :func:`request_scope`) and makes firing scheduling-independent;
    ``delay_ms`` parameterises ``latency`` and ``hang`` actions.
    """

    site: str
    action: str
    probability: float = 1.0
    count: int | None = None
    after: int = 0
    keys: tuple[int, ...] | None = None
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        declared = _site(self.site)
        if self.action not in declared.actions:
            raise FaultError(
                f"site {self.site!r} does not support action {self.action!r}; "
                f"supported: {', '.join(declared.actions)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(f"probability must be within [0, 1], got {self.probability}")
        if self.count is not None and self.count < 1:
            raise FaultError(f"count must be positive when set, got {self.count}")
        if self.after < 0:
            raise FaultError(f"after must be non-negative, got {self.after}")
        if self.delay_ms < 0:
            raise FaultError(f"delay_ms must be non-negative, got {self.delay_ms}")
        if self.keys is not None:
            object.__setattr__(self, "keys", tuple(sorted(set(self.keys))))


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, picklable fault schedule: a seed plus rules.

    Equality and pickling follow dataclass semantics, so a plan travels
    inside ``SessionSpec`` to pool workers unchanged and two campaigns with
    the same plan replay the same injected faults.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @property
    def sites(self) -> frozenset[str]:
        return frozenset(rule.site for rule in self.rules)

    def describe(self) -> str:
        if not self.rules:
            return "fault plan: empty"
        parts = ", ".join(f"{rule.site}/{rule.action}" for rule in self.rules)
        return f"fault plan: seed={self.seed} rules=[{parts}]"


@dataclass
class ActiveFaults:
    """The armed, per-process state of one :class:`FaultPlan`.

    Holds one seeded RNG stream per rule (stream id =
    ``"{seed}:{rule_index}:{site}:{action}"``), hit/fired counters, and a
    log of fired events for reporting.  Not picklable and never shared
    across processes: each worker arms its own copy from the shipped plan.
    """

    plan: FaultPlan
    _streams: list[random.Random] = field(default_factory=list, repr=False)
    _hits: list[int] = field(default_factory=list, repr=False)
    _fired: list[int] = field(default_factory=list, repr=False)
    #: ``plan.sites`` cached once: the property rebuilds a frozenset per
    #: call, far too expensive for the per-execution hot-path probes.
    _sites: frozenset[str] = field(default_factory=frozenset, repr=False)
    fired_log: list[tuple[str, str, int | None]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._sites = self.plan.sites
        for index, rule in enumerate(self.plan.rules):
            stream_id = f"{self.plan.seed}:{index}:{rule.site}:{rule.action}"
            self._streams.append(random.Random(stream_id))
            self._hits.append(0)
            self._fired.append(0)

    def watches(self, site: str) -> bool:
        return site in self._sites

    def check(self, site: str, key: int | None = None) -> FaultRule | None:
        """Return the first rule firing at ``site`` for this hit, else None.

        ``key`` defaults to the ambient request key (see
        :func:`request_scope`); keyed rules fire only when the key matches.
        """
        if site not in self._sites:
            return None
        if key is None:
            key = _REQUEST_KEY.get()
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if rule.keys is not None and (key is None or key not in rule.keys):
                continue
            self._hits[index] += 1
            if self._hits[index] <= rule.after:
                continue
            if rule.count is not None and self._fired[index] >= rule.count:
                continue
            if rule.probability < 1.0 and self._streams[index].random() >= rule.probability:
                continue
            self._fired[index] += 1
            self.fired_log.append((site, rule.action, key))
            return rule
        return None

    def fired_summary(self) -> tuple[tuple[str, str, int], ...]:
        """Sorted ``(site, action, fired_count)`` triples for fired rules."""
        tally: list[tuple[str, str, int]] = []
        for index, rule in enumerate(self.plan.rules):
            if self._fired[index]:
                tally.append((rule.site, rule.action, self._fired[index]))
        return tuple(sorted(tally))


_ACTIVE: ContextVar[ActiveFaults | None] = ContextVar("repro_active_faults", default=None)
_REQUEST_KEY: ContextVar[int | None] = ContextVar("repro_fault_request_key", default=None)


def active_faults() -> ActiveFaults | None:
    """The armed fault state of the current context, or ``None``."""
    return _ACTIVE.get()


def check(site: str, key: int | None = None) -> FaultRule | None:
    """Site probe: the firing rule, or ``None`` when unarmed or not firing.

    This is the only call production code places at an injection site; with
    no plan armed it is a single ContextVar read returning ``None``.
    """
    active = _ACTIVE.get()
    if active is None:
        return None
    return active.check(site, key)


@contextmanager
def use_faults(plan: FaultPlan | ActiveFaults | None) -> Iterator[ActiveFaults | None]:
    """Arm ``plan`` for the dynamic extent of the block.

    Accepts a plan (armed fresh), an already-armed :class:`ActiveFaults`
    (re-published, preserving counters across activations — this is what
    ``Session.activate`` does), or ``None`` (no-op).
    """
    if plan is None:
        yield None
        return
    active = plan if isinstance(plan, ActiveFaults) else ActiveFaults(plan)
    token = _ACTIVE.set(active)
    try:
        yield active
    finally:
        _ACTIVE.reset(token)


@contextmanager
def request_scope(key: int) -> Iterator[None]:
    """Bind the ambient request key (absolute batch index) for keyed rules.

    Both the serial batch loop and the parallel chunk worker wrap each
    request in this scope, so a keyed rule fires for the same request no
    matter which process executes it or in what order.
    """
    token = _REQUEST_KEY.set(key)
    try:
        yield
    finally:
        _REQUEST_KEY.reset(token)


def current_request_key() -> int | None:
    """The ambient request key bound by :func:`request_scope`, or ``None``."""
    return _REQUEST_KEY.get()
