"""Seeded chaos campaigns: prove the hardened runtime degrades, never lies.

A chaos campaign generates a seeded request workload (the fuzz runner's
case generator), runs it twice — once fault-free and serial (the oracle),
once under an armed :class:`~repro.faults.plan.FaultPlan` with a parallel
pool, a persistent tier and/or a wall-clock deadline (the *schedule*) —
and classifies every outcome:

* **matched** — verdict, certificate and error rendering byte-equal to the
  fault-free oracle run;
* **degraded** — the runtime gave an *honest* partial answer
  (``degraded="deadline"`` or ``degraded="quarantined"``): no verdict was
  invented, the reason is machine-readable;
* **silently wrong** — anything else.  The campaign invariant is that this
  bucket is empty: a fault may cost an answer, it must never corrupt one.

For persist schedules the campaign additionally drives the store's circuit
breaker through its full lifecycle (closed → open → half-open → closed)
with a count-limited injected failure burst and records the transitions.

Determinism: outcome-affecting rules (worker crashes, admission latency
under a deadline) are *keyed* to absolute request indices drawn from the
campaign seed, so the same seed replays the same degradations regardless
of pool scheduling; probabilistic rules are reserved for persist faults,
which the retry/breaker tier fully absorbs.  :meth:`ChaosReport.digest`
hashes the canonical per-case classification (timing excluded), so two
same-seed campaigns are byte-identical.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Any

from repro.engine.fingerprints import persistent_digest
from repro.exceptions import FaultError
from repro.faults.plan import FaultPlan, FaultRule, use_faults

__all__ = [
    "CHAOS_SCHEDULES",
    "ChaosConfig",
    "ChaosReport",
    "build_chaos_plan",
    "chaos_requests",
    "run_chaos",
]

#: The named fault schedules a campaign can run under.
CHAOS_SCHEDULES = ("persist", "worker", "deadline", "mixed")

#: Default wall-clock budget per request under deadline schedules, and the
#: injected admission latency that forces keyed requests past it.
_DEADLINE_MS = 400
_LATENCY_FACTOR = 2.5


@dataclass(frozen=True)
class ChaosConfig:
    """Shape and fault schedule of one chaos campaign."""

    cases: int = 200
    seed: int = 0
    schedule: str = "mixed"
    jobs: int = 2
    backend: str = "indexed"
    chunk_size: int = 4
    #: Wall-clock bound per worker task; hung/crashed shards are retried
    #: and bisected by :func:`repro.parallel.parallel_batch` within it.
    task_timeout: float = 30.0
    #: Store path for persist schedules; ``None`` uses a fresh temp store.
    persist_path: str | None = None
    #: Per-request deadline override; ``None`` uses the schedule default.
    deadline_ms: int | None = None

    def __post_init__(self) -> None:
        if self.cases < 1:
            raise FaultError("a chaos campaign needs at least one case")
        if self.schedule not in CHAOS_SCHEDULES:
            raise FaultError(
                f"unknown chaos schedule {self.schedule!r}; "
                f"expected one of {CHAOS_SCHEDULES}"
            )
        if self.jobs < 1:
            raise FaultError("jobs must be at least 1")
        if self.chunk_size < 1:
            raise FaultError("chunk_size must be at least 1")
        if self.task_timeout <= 0:
            raise FaultError("task_timeout must be positive")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise FaultError("deadline_ms must be positive when set")


def chaos_requests(config: ChaosConfig) -> list[Any]:
    """The campaign's request stream: seeded pairs from the fuzz generators.

    Pure function of ``(seed, cases)`` — the faulted run and the fault-free
    oracle run see the exact same requests, and a same-seed replay sees
    them again.
    """
    from repro.session.requests import ContainmentRequest
    from repro.verify.runner import CampaignConfig, generate_case

    generator = CampaignConfig(
        cases=config.cases, seed=config.seed, mutation_rate=0.0, shrink_failures=False
    )
    requests: list[Any] = []
    for index in range(config.cases):
        case = generate_case(generator, index)
        requests.append(
            ContainmentRequest(case.containee, case.containing, verify_certificates=False)
        )
    return requests


def build_chaos_plan(config: ChaosConfig) -> tuple[FaultPlan, int | None]:
    """``(fault plan, deadline_ms)`` for the configured schedule.

    Outcome-affecting rules are keyed to request indices drawn from the
    campaign seed (crash keys and latency keys are disjoint, so each
    poison request has one expected degradation); persist rules are
    probabilistic — the retry/breaker tier must absorb them wholesale.
    """
    rng = Random(f"chaos:{config.seed}:{config.schedule}")
    rules: list[FaultRule] = []
    deadline_ms = config.deadline_ms
    crash_keys: tuple[int, ...] = ()

    if config.schedule in ("worker", "mixed"):
        crash_keys = tuple(sorted(rng.sample(range(config.cases), max(1, config.cases // 50))))
        rules.append(FaultRule("parallel.request", "crash", keys=crash_keys))
    if config.schedule in ("deadline", "mixed"):
        if deadline_ms is None:
            deadline_ms = _DEADLINE_MS
        eligible = [index for index in range(config.cases) if index not in set(crash_keys)]
        slow_keys = tuple(sorted(rng.sample(eligible, max(1, config.cases // 20))))
        rules.append(
            FaultRule(
                "session.execute",
                "latency",
                keys=slow_keys,
                delay_ms=deadline_ms * _LATENCY_FACTOR,
            )
        )
    if config.schedule in ("persist", "mixed"):
        rules.append(FaultRule("persist.store", "busy", probability=0.10))
        rules.append(FaultRule("persist.store", "torn-write", probability=0.05))
        rules.append(FaultRule("persist.store", "latency", probability=0.05, delay_ms=2.0))
        rules.append(FaultRule("persist.load", "busy", probability=0.10))
        rules.append(FaultRule("persist.load", "error", probability=0.05))

    return FaultPlan(seed=config.seed, rules=tuple(rules)), deadline_ms


def _breaker_lifecycle(config: ChaosConfig, path: str) -> tuple[str, ...]:
    """Drive the store's circuit breaker through one full open/close cycle.

    A count-limited injected failure burst opens the breaker (three
    consecutive store errors), the next store is skipped while it cools
    down, and after the cooldown a half-open probe succeeds and closes it.
    Returns the recorded state transitions.
    """
    from repro.engine.persist import PersistentCache

    store = PersistentCache(path, breaker_threshold=3, breaker_cooldown=0.25)
    burst = FaultPlan(
        seed=config.seed, rules=(FaultRule("persist.store", "error", count=3),)
    )
    try:
        with use_faults(burst):
            for probe in range(4):
                # Three failed writes open the breaker; the fourth is
                # skipped without touching sqlite (breaker_skipped).
                store.store("results", ("session", f"chaos-breaker-{probe}"), probe)
            time.sleep(0.3)  # past the cooldown: the next write half-opens
            store.store("results", ("session", "chaos-breaker-probe"), 99)
        return store.breaker.transitions
    finally:
        store.close()


def _stable_digest(value: Any) -> str:
    """A cross-run-stable token for a certificate/value in the replay digest."""
    if value is None:
        return "-"
    try:
        return persistent_digest(value)
    except Exception:  # noqa: BLE001 - best effort; repr is process-stable
        return repr(value)


@dataclass(frozen=True)
class CaseOutcome:
    """The canonical, timing-free classification of one chaos case."""

    index: int
    classification: str  # "matched" | "degraded" | "silently-wrong"
    degraded: str | None
    verdict: bool | None
    certificate_digest: str
    error: str | None


@dataclass(frozen=True)
class ChaosReport:
    """Everything one chaos campaign established."""

    config: ChaosConfig
    plan: FaultPlan
    deadline_ms: int | None
    cases: tuple[CaseOutcome, ...]
    breaker_transitions: tuple[str, ...]
    breaker_ok: bool
    elapsed: float

    @property
    def decisions(self) -> int:
        return len(self.cases)

    @property
    def matched(self) -> int:
        return sum(1 for case in self.cases if case.classification == "matched")

    @property
    def degraded(self) -> int:
        return sum(1 for case in self.cases if case.classification == "degraded")

    @property
    def quarantined(self) -> int:
        return sum(1 for case in self.cases if case.degraded == "quarantined")

    @property
    def deadline_degraded(self) -> int:
        return sum(1 for case in self.cases if case.degraded == "deadline")

    @property
    def silently_wrong(self) -> tuple[CaseOutcome, ...]:
        return tuple(case for case in self.cases if case.classification == "silently-wrong")

    @property
    def ok(self) -> bool:
        return not self.silently_wrong and self.breaker_ok

    def digest(self) -> str:
        """SHA-256 over the canonical per-case record (timing excluded).

        Two same-seed campaigns — no matter how the pool scheduled the
        shards — produce the same digest; this is the replay invariant the
        chaos tests assert byte-for-byte.
        """
        payload = repr(
            (
                self.config.schedule,
                self.config.seed,
                self.config.cases,
                tuple(
                    (
                        case.index,
                        case.classification,
                        case.degraded,
                        case.verdict,
                        case.certificate_digest,
                        case.error,
                    )
                    for case in self.cases
                ),
                self.breaker_transitions,
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        lines = [
            f"chaos campaign ({self.config.schedule}): {self.decisions} decisions, "
            f"jobs={self.config.jobs}, seed={self.config.seed} in {self.elapsed:.1f}s",
            f"{self.plan.describe()}",
            f"outcomes: {self.matched} matched the fault-free oracle, "
            f"{self.quarantined} quarantined, {self.deadline_degraded} deadline-degraded, "
            f"{len(self.silently_wrong)} silently wrong",
        ]
        if self.breaker_transitions:
            verdict = "ok" if self.breaker_ok else "UNEXPECTED"
            lines.append(
                f"breaker lifecycle: {' -> '.join(self.breaker_transitions)} [{verdict}]"
            )
        for case in self.silently_wrong:
            lines.append(
                f"  SILENTLY WRONG case {case.index}: verdict={case.verdict} "
                f"error={case.error!r}"
            )
        lines.append(f"replay digest: {self.digest()}")
        lines.append(
            "invariant holds: every outcome correct-per-oracle or explicitly degraded"
            if self.ok
            else "INVARIANT VIOLATED"
        )
        return "\n".join(lines)


def _classify(index: int, faulted: Any, oracle: Any) -> CaseOutcome:
    if faulted.degraded is not None:
        return CaseOutcome(
            index=index,
            classification="degraded",
            degraded=faulted.degraded,
            verdict=faulted.verdict,
            certificate_digest=_stable_digest(faulted.certificate),
            error=faulted.error,
        )
    honest = (
        faulted.verdict == oracle.verdict
        and faulted.certificate == oracle.certificate
        and faulted.error == oracle.error
    )
    return CaseOutcome(
        index=index,
        classification="matched" if honest else "silently-wrong",
        degraded=None,
        verdict=faulted.verdict,
        certificate_digest=_stable_digest(faulted.certificate),
        error=faulted.error,
    )


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """Run one chaos campaign and classify every outcome against the oracle.

    The oracle run is serial and fault-free; the chaos run arms the
    schedule's :class:`FaultPlan`, applies the deadline (if any) through
    ``Limits.deadline_ms``, attaches a persistent tier for persist
    schedules, and executes the same requests through
    ``Session.batch(jobs=..., capture_errors=True, task_timeout=...)``.
    """
    from repro.session.session import Limits, Session

    config = config or ChaosConfig()
    started = time.perf_counter()
    requests = chaos_requests(config)
    plan, deadline_ms = build_chaos_plan(config)

    oracle_session = Session(backend=config.backend)
    oracle = [oracle_session.submit_captured(request) for request in requests]

    wants_persist = config.schedule in ("persist", "mixed")
    temp_dir: str | None = None
    persist_path: str | None = None
    if wants_persist:
        persist_path = config.persist_path
        if persist_path is None:
            temp_dir = tempfile.mkdtemp(prefix="repro-chaos-")
            persist_path = str(Path(temp_dir) / "chaos-store.sqlite")

    breaker_transitions: tuple[str, ...] = ()
    breaker_ok = True
    try:
        session = Session(
            backend=config.backend,
            limits=Limits(deadline_ms=deadline_ms),
            fault_plan=plan,
            persist_path=persist_path,
        )
        try:
            faulted = list(
                session.batch(
                    requests,
                    jobs=config.jobs,
                    chunk_size=config.chunk_size,
                    capture_errors=True,
                    task_timeout=config.task_timeout,
                )
            )
        finally:
            session.close()
        if wants_persist and persist_path is not None:
            breaker_transitions = _breaker_lifecycle(config, persist_path)
            breaker_ok = breaker_transitions == ("open", "half-open", "closed")
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)

    cases = tuple(
        _classify(index, faulted_outcome, oracle_outcome)
        for index, (faulted_outcome, oracle_outcome) in enumerate(zip(faulted, oracle))
    )
    return ChaosReport(
        config=config,
        plan=plan,
        deadline_ms=deadline_ms,
        cases=cases,
        breaker_transitions=breaker_transitions,
        breaker_ok=breaker_ok,
        elapsed=time.perf_counter() - started,
    )
