"""Deterministic fault injection and the hardened-runtime helpers.

Public surface:

* :class:`~repro.faults.plan.FaultPlan` / :class:`~repro.faults.plan.FaultRule`
  — frozen, picklable fault schedules bound to registered sites.
* :func:`~repro.faults.plan.use_faults` / :func:`~repro.faults.plan.check` —
  arming and probing; sites cost one ContextVar read when unarmed.
* :func:`~repro.faults.runtime.deadline_scope` /
  :func:`~repro.faults.runtime.tick_handle` — wall-clock budgets polled by
  the engine driver loops.
* :func:`~repro.faults.chaos.run_chaos` — the seeded chaos campaign that
  asserts every outcome under faults is correct-per-oracle or explicitly
  degraded, never silently wrong.

See ``docs/faults.md`` for the site catalogue and campaign invariants.
"""

from repro.faults.plan import (
    SITES,
    ActiveFaults,
    FaultPlan,
    FaultRule,
    FaultSite,
    active_faults,
    check,
    current_request_key,
    request_scope,
    site_names,
    use_faults,
)
from repro.faults.runtime import (
    TICK_INTERVAL,
    check_deadline,
    deadline_scope,
    session_entry,
    tick_handle,
)

__all__ = [
    "SITES",
    "TICK_INTERVAL",
    "ActiveFaults",
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "active_faults",
    "check",
    "check_deadline",
    "current_request_key",
    "deadline_scope",
    "request_scope",
    "session_entry",
    "site_names",
    "tick_handle",
    "use_faults",
]
