"""Deadline propagation and the engine driver-loop tick protocol.

A deadline is a monotonic-clock timestamp published through a ContextVar by
:func:`deadline_scope`; the engine driver loops poll it every
:data:`TICK_INTERVAL` rows through the handle returned by
:func:`tick_handle` and raise
:class:`~repro.exceptions.DeadlineExceeded` when it has passed.  The session
layer converts that exception into an honest degraded Outcome.

The integration pattern keeps the inactive cost at one falsy integer test
per loop iteration::

    tick = tick_handle()          # None when no deadline/faults are armed
    countdown = TICK_INTERVAL if tick is not None else 0
    while ...:                    # the hot loop
        if countdown:             # 0 when inactive: single falsy test
            countdown -= 1
            if not countdown:
                tick()            # may sleep (injected latency) or raise
                countdown = TICK_INTERVAL

``tick_handle`` itself applies any ``executor.start`` injected latency and
performs one up-front deadline check, so even an execution that never
reaches :data:`TICK_INTERVAL` rows observes an already-expired deadline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator

from repro.exceptions import DeadlineExceeded
from repro.faults.plan import _ACTIVE

__all__ = [
    "TICK_INTERVAL",
    "check_deadline",
    "deadline_scope",
    "session_entry",
    "tick_handle",
]

#: Rows between deadline polls in the engine driver loops.  Small enough to
#: bound overshoot on row-heavy plans, large enough to amortise the
#: monotonic-clock read.
TICK_INTERVAL = 64

_DEADLINE: ContextVar[float | None] = ContextVar("repro_deadline", default=None)


@contextmanager
def deadline_scope(deadline_ms: float | None) -> Iterator[None]:
    """Publish a wall-clock budget for the dynamic extent of the block.

    ``None`` is a no-op, so callers thread an optional ``Limits.deadline_ms``
    straight through.  Scopes nest; the innermost one wins, which lets a
    sub-operation tighten (but not outlive) its caller's budget.
    """
    if deadline_ms is None:
        yield
        return
    token = _DEADLINE.set(time.monotonic() + deadline_ms / 1000.0)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def check_deadline() -> None:
    """Raise :class:`DeadlineExceeded` if the ambient deadline has passed."""
    deadline = _DEADLINE.get()
    if deadline is not None and time.monotonic() > deadline:
        raise DeadlineExceeded("wall-clock deadline exceeded")


def session_entry() -> None:
    """The ``session.execute`` site: request admission inside the deadline.

    Called by ``Session._execute`` right after the deadline scope opens and
    before any memo lookup or engine work.  Applies injected admission
    latency, then checks the deadline — so a keyed latency rule degrades a
    request deterministically, independent of cache state or pool
    scheduling.  Unarmed cost: two ContextVar reads per request.
    """
    active = _ACTIVE.get()
    if active is not None:
        rule = active.check("session.execute")
        if rule is not None and rule.delay_ms > 0:
            time.sleep(rule.delay_ms / 1000.0)
    check_deadline()


def tick_handle() -> Callable[[], None] | None:
    """The per-execution tick callable, or ``None`` when nothing is armed.

    Fetched once at the start of each engine driver-loop execution.  With no
    ambient deadline and no armed fault plan watching the executor sites,
    this is two ContextVar reads returning ``None`` — the countdown pattern
    then skips all per-iteration work.
    """
    deadline = _DEADLINE.get()
    active = _ACTIVE.get()
    if active is not None:
        if deadline is not None and time.monotonic() > deadline:
            raise DeadlineExceeded("wall-clock deadline exceeded")
        start_rule = active.check("executor.start")
        if start_rule is not None and start_rule.delay_ms > 0:
            time.sleep(start_rule.delay_ms / 1000.0)
        if not active.watches("executor.tick"):
            active = None
    if deadline is None and active is None:
        return None
    if deadline is not None and time.monotonic() > deadline:
        raise DeadlineExceeded("wall-clock deadline exceeded")

    def tick() -> None:
        if active is not None:
            rule = active.check("executor.tick")
            if rule is not None and rule.delay_ms > 0:
                time.sleep(rule.delay_ms / 1000.0)
        if deadline is not None and time.monotonic() > deadline:
            raise DeadlineExceeded("wall-clock deadline exceeded")

    return tick
