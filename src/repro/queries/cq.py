"""Conjunctive queries with bag representation.

Under bag semantics the *syntactic repetition* of atoms inside a query body
matters: the paper models a conjunctive query (CQ) as the pair
``⟨x, µ_q⟩`` where ``x`` is the tuple of free variables and ``µ_q`` is the
*body multiplicity*, a bag over the set of distinct body atoms counting how
many times each atom occurs in the query expression.

:class:`ConjunctiveQuery` stores exactly this pair.  It offers:

* structural accessors (variables, existential variables, active domain,
  projection-freeness, degree = total number of atom occurrences);
* the canonical instance ``I_q`` (variables frozen to canonical constants);
* substitution application following Equation (1) of the paper, which *sums*
  the multiplicities of atoms that collapse onto each other;
* grounding ``q(t)`` on a tuple of constants unifiable with the head;
* renaming utilities used by the homomorphism machinery and the workload
  generators.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import (
    NotProjectionFreeError,
    QueryError,
    UnificationError,
)
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.schema import DatabaseSchema
from repro.relational.substitutions import Substitution, canonical_substitution, unify_tuples
from repro.relational.terms import (
    CanonicalConstant,
    Constant,
    Term,
    Variable,
    is_constant_like,
)

__all__ = ["ConjunctiveQuery", "BodyAtom"]


class BodyAtom:
    """A body atom together with its multiplicity.

    This is a light-weight read-only view handed out by
    :meth:`ConjunctiveQuery.body_items`, convenient for display and for the
    encoders in :mod:`repro.core.encoding`.
    """

    __slots__ = ("atom", "multiplicity")

    def __init__(self, atom: Atom, multiplicity: int) -> None:
        self.atom = atom
        self.multiplicity = multiplicity

    def __iter__(self):
        return iter((self.atom, self.multiplicity))

    def __repr__(self) -> str:
        return f"BodyAtom({self.atom}, {self.multiplicity})"


class ConjunctiveQuery:
    """A conjunctive query in bag representation ``⟨x, µ_q⟩``.

    Parameters
    ----------
    head:
        The tuple of free variables ``x`` (repetitions allowed, e.g.
        ``q(x, x) ← R(x)``).
    body:
        Either an iterable of atoms (repetitions count) or a mapping from
        atoms to positive multiplicities.
    name:
        Optional display name used by the pretty printer (defaults to ``q``).

    The query must be *safe*: every head variable must occur in the body.
    The body must be non-empty.
    """

    __slots__ = ("_head", "_body", "_name", "_hash", "_body_atoms")

    def __init__(
        self,
        head: Sequence[Variable],
        body: Mapping[Atom, int] | Iterable[Atom],
        name: str = "q",
    ) -> None:
        head_tuple = tuple(head)
        for variable in head_tuple:
            if not isinstance(variable, Variable):
                raise QueryError(f"head positions must be variables, got {variable!r}")

        if isinstance(body, Mapping):
            raw_counts = dict(body)
        else:
            raw_counts = {}
            for atom in body:
                raw_counts[atom] = raw_counts.get(atom, 0) + 1

        counts: dict[Atom, int] = {}
        for atom, multiplicity in raw_counts.items():
            if not isinstance(atom, Atom):
                raise QueryError(f"body elements must be atoms, got {atom!r}")
            if not isinstance(multiplicity, int) or isinstance(multiplicity, bool):
                raise QueryError(f"body multiplicity of {atom} must be an int, got {multiplicity!r}")
            if multiplicity < 0:
                raise QueryError(f"body multiplicity of {atom} must be non-negative, got {multiplicity}")
            if multiplicity > 0:
                counts[atom] = multiplicity

        if not counts:
            raise QueryError("a conjunctive query must have a non-empty body")

        body_variables: set[Variable] = set()
        for atom in counts:
            body_variables.update(atom.variables())
        missing = [variable for variable in head_tuple if variable not in body_variables]
        if missing:
            raise QueryError(
                f"unsafe query: head variables {sorted(str(v) for v in missing)} do not occur in the body"
            )

        self._head: tuple[Variable, ...] = head_tuple
        self._body: dict[Atom, int] = dict(sorted(counts.items(), key=lambda item: str(item[0])))
        self._name: str = name
        self._hash: int | None = None

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Display name of the query."""
        return self._name

    @property
    def head(self) -> tuple[Variable, ...]:
        """The tuple of free variables ``x``."""
        return self._head

    @property
    def arity(self) -> int:
        """Number of head positions (the arity of the answer relation)."""
        return len(self._head)

    @property
    def body(self) -> Mapping[Atom, int]:
        """The body multiplicity ``µ_q`` as a read-only mapping."""
        return dict(self._body)

    def body_atoms(self) -> tuple[Atom, ...]:
        """The distinct atoms of the body, in a deterministic order.

        The tuple is built once and cached: queries are immutable, and a
        *stable* tuple identity lets the engine's identity-keyed plan memo
        recognise repeated executions without re-fingerprinting the atoms.
        """
        try:
            return self._body_atoms
        except AttributeError:
            atoms = tuple(self._body)
            object.__setattr__(self, "_body_atoms", atoms)
            return atoms

    def body_items(self) -> tuple[BodyAtom, ...]:
        """The body as ``(atom, multiplicity)`` views, deterministic order."""
        return tuple(BodyAtom(atom, count) for atom, count in self._body.items())

    def multiplicity(self, atom: Atom) -> int:
        """``µ_q(atom)``: how many times *atom* occurs in the body (0 if absent)."""
        return self._body.get(atom, 0)

    def degree(self) -> int:
        """Total number of atom occurrences (sum of body multiplicities)."""
        return sum(self._body.values())

    def __len__(self) -> int:
        return len(self._body)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._body)

    # ------------------------------------------------------------------ #
    # Variables and constants
    # ------------------------------------------------------------------ #
    def variables(self) -> frozenset[Variable]:
        """``var(q)``: every variable occurring in the query."""
        result: set[Variable] = set(self._head)
        for atom in self._body:
            result.update(atom.variables())
        return frozenset(result)

    def head_variables(self) -> frozenset[Variable]:
        """The set of distinct free variables."""
        return frozenset(self._head)

    def existential_variables(self) -> frozenset[Variable]:
        """Body variables that are not free (the ``y`` of ``∃y ⋀ R(x, y)``)."""
        return self.variables() - self.head_variables()

    def is_projection_free(self) -> bool:
        """``True`` when the query has no existential variables."""
        return not self.existential_variables()

    def require_projection_free(self) -> None:
        """Raise :class:`NotProjectionFreeError` unless the query is projection-free."""
        existential = self.existential_variables()
        if existential:
            raise NotProjectionFreeError(
                f"query {self._name} has existential variables "
                f"{sorted(str(v) for v in existential)}"
            )

    def active_domain(self) -> frozenset[Term]:
        """``adom(q)``: every constant occurring in the query."""
        constants: set[Term] = set()
        for atom in self._body:
            constants.update(atom.constants())
        return frozenset(constants)

    def language_constants(self) -> frozenset[Constant]:
        """Language constants occurring in the query."""
        return frozenset(c for c in self.active_domain() if isinstance(c, Constant))

    def canonical_constants(self) -> frozenset[CanonicalConstant]:
        """Canonical constants occurring in the query (normally empty for
        user-written queries, non-empty after grounding on a probe tuple)."""
        return frozenset(c for c in self.active_domain() if isinstance(c, CanonicalConstant))

    def relation_names(self) -> frozenset[str]:
        """Relation names used by the body."""
        return frozenset(atom.relation for atom in self._body)

    def schema(self) -> DatabaseSchema:
        """The database schema induced by the body atoms."""
        return DatabaseSchema.from_atoms(self._body)

    def is_boolean(self) -> bool:
        """``True`` when the query has no free variables."""
        return not self._head

    def is_ground(self) -> bool:
        """``True`` when the body contains no variables at all."""
        return all(atom.is_ground for atom in self._body)

    # ------------------------------------------------------------------ #
    # Canonical instance and grounding
    # ------------------------------------------------------------------ #
    def canonical_instance(self) -> SetInstance:
        """The canonical set instance ``I_q``.

        Every variable ``x`` of the body is replaced by its canonical
        constant ``x̂``; the result is a set of facts.
        """
        freeze = canonical_substitution(self.variables())
        return SetInstance(freeze.apply_atom(atom) for atom in self._body)

    def canonical_bag(self) -> BagInstance:
        """The canonical instance seen as a bag, with the body multiplicities.

        This is the bag assigning to each frozen atom the (summed) body
        multiplicity of its pre-images — occasionally useful as a "most
        syntactic" bag over ``I_q``.
        """
        freeze = canonical_substitution(self.variables())
        counts: dict[Atom, int] = {}
        for atom, multiplicity in self._body.items():
            frozen = freeze.apply_atom(atom)
            counts[frozen] = counts.get(frozen, 0) + multiplicity
        return BagInstance(counts)

    def apply_substitution(self, substitution: Substitution, name: str | None = None) -> "ConjunctiveQuery":
        """The query ``σ(q)`` with body multiplicity given by Equation (1).

        Atoms of the body that collapse onto the same image under ``σ`` have
        their multiplicities *summed*, and the head becomes ``σ(x)``.  Head
        positions mapped to constants are removed from the head (the result
        is then a partially ground query, as produced by probe-tuple
        grounding); positions mapped to variables stay.
        """
        new_counts: dict[Atom, int] = {}
        for atom, multiplicity in self._body.items():
            image = substitution.apply_atom(atom)
            new_counts[image] = new_counts.get(image, 0) + multiplicity
        new_head = tuple(
            term for term in substitution.apply_tuple(self._head) if isinstance(term, Variable)
        )
        return ConjunctiveQuery(new_head, new_counts, name=name or self._name)

    def ground(self, probe: Sequence[Term], name: str | None = None) -> "ConjunctiveQuery":
        """The Boolean query ``q(t)`` obtained by unifying the head with *probe*.

        *probe* must be a tuple of constants (language or canonical) of the
        same length as the head and consistent with repeated head variables;
        otherwise :class:`UnificationError` is raised.  The resulting query
        has an empty head.
        """
        probe_tuple = tuple(probe)
        for term in probe_tuple:
            if not is_constant_like(term):
                raise UnificationError(f"probe tuples must contain constants, got {term!r}")
        substitution = unify_tuples(self._head, probe_tuple)
        grounded = self.apply_substitution(substitution, name=name or f"{self._name}@probe")
        return ConjunctiveQuery((), grounded.body, name=grounded.name)

    def rename_variables(self, renaming: Mapping[Variable, Variable], name: str | None = None) -> "ConjunctiveQuery":
        """Rename variables via an injective mapping (others stay fixed)."""
        images = list(renaming.values())
        if len(set(images)) != len(images):
            raise QueryError("variable renaming must be injective")
        substitution = Substitution(dict(renaming))
        new_head = tuple(substitution.apply_term(v) for v in self._head)
        new_body: dict[Atom, int] = {}
        for atom, multiplicity in self._body.items():
            image = substitution.apply_atom(atom)
            new_body[image] = new_body.get(image, 0) + multiplicity
        return ConjunctiveQuery(tuple(v for v in new_head if isinstance(v, Variable)), new_body, name=name or self._name)

    def with_name(self, name: str) -> "ConjunctiveQuery":
        """A copy of the query with a different display name."""
        return ConjunctiveQuery(self._head, self._body, name=name)

    def with_head(self, head: Sequence[Variable]) -> "ConjunctiveQuery":
        """A copy of the query with a different head over the same body."""
        return ConjunctiveQuery(tuple(head), self._body, name=self._name)

    def set_body(self) -> "ConjunctiveQuery":
        """The query with all body multiplicities collapsed to 1.

        Under set semantics atom repetition is irrelevant; this helper gives
        the "set version" of the query used by the set-containment baseline.
        """
        return ConjunctiveQuery(self._head, {atom: 1 for atom in self._body}, name=self._name)

    def conjoin(self, other: "ConjunctiveQuery", name: str | None = None) -> "ConjunctiveQuery":
        """The conjunction ``q ∧ q'``: bodies are bag-unioned, heads concatenated.

        Used by the hardness reduction of Theorem 5.4 (``q_T ∧ q_G``).
        """
        counts = dict(self._body)
        for atom, multiplicity in other._body.items():
            counts[atom] = counts.get(atom, 0) + multiplicity
        return ConjunctiveQuery(self._head + other._head, counts, name=name or f"{self._name}&{other._name}")

    # ------------------------------------------------------------------ #
    # Equality / display
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._head == other._head and self._body == other._body

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._head, frozenset(self._body.items())))
        return self._hash

    def __str__(self) -> str:
        head_args = ", ".join(str(v) for v in self._head)
        parts = []
        for atom, multiplicity in self._body.items():
            if multiplicity == 1:
                parts.append(str(atom))
            else:
                parts.append(f"{atom.relation}^{multiplicity}({', '.join(str(t) for t in atom.terms)})")
        return f"{self._name}({head_args}) <- {', '.join(parts)}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self})"
