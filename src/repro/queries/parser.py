"""A small datalog-style parser for conjunctive queries.

The concrete syntax mirrors the notation of the paper::

    q(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4)

* ``<-`` (or ``:-``) separates the head from the body;
* ``R^2(...)`` annotates the atom with its body multiplicity (default ``1``);
  repeating an atom also adds up multiplicities;
* terms starting with ``?`` are always variables; quoted tokens (``'a'`` or
  ``"a"``) and integers are always constants; bare identifiers are variables
  when their first letter belongs to ``variable_prefixes`` (by default
  ``x y z u v w`` in either case) and constants otherwise — which matches
  the paper's habit of naming variables ``x1, y2`` and constants ``a, b, c1``.

Multiple rules separated by newlines or ``;`` parse to a UCQ via
:func:`parse_ucq`.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.exceptions import ParseError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.atoms import Atom
from repro.relational.terms import Constant, Term, Variable

__all__ = ["parse_cq", "parse_ucq", "parse_term", "parse_atom", "DEFAULT_VARIABLE_PREFIXES"]

#: First letters (lower-cased) of bare identifiers that are read as variables.
DEFAULT_VARIABLE_PREFIXES: frozenset[str] = frozenset("xyzuvw")

_ATOM_RE = re.compile(
    r"\s*(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*(?:\^\s*(?P<mult>\d+))?\s*\((?P<args>[^()]*)\)\s*"
)
_HEAD_RE = re.compile(r"\s*(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*\((?P<args>[^()]*)\)\s*$")
_INT_RE = re.compile(r"^[+-]?\d+$")


def parse_term(token: str, variable_prefixes: frozenset[str] = DEFAULT_VARIABLE_PREFIXES) -> Term:
    """Parse a single term token into a :class:`Variable` or :class:`Constant`."""
    token = token.strip()
    if not token:
        raise ParseError("empty term")
    if token.startswith("?"):
        name = token[1:]
        if not name:
            raise ParseError("'?' must be followed by a variable name")
        return Variable(name)
    if (token[0] == token[-1] == "'" or token[0] == token[-1] == '"') and len(token) >= 2:
        return Constant(token[1:-1])
    if _INT_RE.match(token):
        return Constant(int(token))
    if not re.match(r"^[A-Za-z_][A-Za-z_0-9]*$", token):
        raise ParseError(f"cannot parse term {token!r}")
    if token[0].lower() in variable_prefixes:
        return Variable(token)
    return Constant(token)


def _parse_args(args: str, variable_prefixes: frozenset[str]) -> tuple[Term, ...]:
    args = args.strip()
    if not args:
        return ()
    return tuple(parse_term(token, variable_prefixes) for token in args.split(","))


def parse_atom(
    text: str, variable_prefixes: frozenset[str] = DEFAULT_VARIABLE_PREFIXES
) -> tuple[Atom, int]:
    """Parse ``R^k(t1, ..., tn)`` into an atom and its multiplicity ``k``."""
    match = _ATOM_RE.fullmatch(text)
    if not match:
        raise ParseError(f"cannot parse atom {text!r}")
    multiplicity = int(match.group("mult") or 1)
    terms = _parse_args(match.group("args"), variable_prefixes)
    return Atom(match.group("name"), terms), multiplicity


def _split_atoms(body: str) -> list[str]:
    """Split the body on commas that are not nested inside parentheses."""
    chunks: list[str] = []
    depth = 0
    current: list[str] = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced parentheses in {body!r}")
        if char == "," and depth == 0:
            chunks.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise ParseError(f"unbalanced parentheses in {body!r}")
    if current:
        chunks.append("".join(current))
    return [chunk for chunk in (c.strip() for c in chunks) if chunk]


def parse_cq(
    text: str,
    variable_prefixes: frozenset[str] = DEFAULT_VARIABLE_PREFIXES,
) -> ConjunctiveQuery:
    """Parse a single datalog rule into a :class:`ConjunctiveQuery`."""
    if "<-" in text:
        head_text, body_text = text.split("<-", 1)
    elif ":-" in text:
        head_text, body_text = text.split(":-", 1)
    else:
        raise ParseError(f"missing '<-' in rule {text!r}")

    head_match = _HEAD_RE.fullmatch(head_text)
    if not head_match:
        raise ParseError(f"cannot parse head {head_text!r}")
    head_terms = _parse_args(head_match.group("args"), variable_prefixes)
    head_variables: list[Variable] = []
    for term in head_terms:
        if not isinstance(term, Variable):
            raise ParseError(
                f"head terms must be variables, got {term!r}; ground the query after parsing instead"
            )
        head_variables.append(term)

    counts: dict[Atom, int] = {}
    for chunk in _split_atoms(body_text):
        atom, multiplicity = parse_atom(chunk, variable_prefixes)
        counts[atom] = counts.get(atom, 0) + multiplicity
    if not counts:
        raise ParseError(f"rule {text!r} has an empty body")

    return ConjunctiveQuery(tuple(head_variables), counts, name=head_match.group("name"))


def parse_ucq(
    rules: str | Iterable[str],
    variable_prefixes: frozenset[str] = DEFAULT_VARIABLE_PREFIXES,
    name: str = "Q",
) -> UnionOfConjunctiveQueries:
    """Parse several rules (newline- or ``;``-separated) into a UCQ."""
    if isinstance(rules, str):
        pieces: Sequence[str] = [piece for piece in re.split(r"[;\n]", rules) if piece.strip()]
    else:
        pieces = list(rules)
    disjuncts = [parse_cq(piece, variable_prefixes) for piece in pieces]
    if not disjuncts:
        raise ParseError("no rules supplied")
    return UnionOfConjunctiveQueries(disjuncts, name=name)
