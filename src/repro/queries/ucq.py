"""Unions of conjunctive queries (UCQs).

UCQs play two roles in the reproduction:

* they are the query class for which Ioannidis and Ramakrishnan proved bag
  containment *undecidable* (via a reduction from the Diophantine inequality
  problem) — the constructive encoder for that reduction lives in
  :mod:`repro.core.reductions` and produces :class:`UnionOfConjunctiveQueries`
  objects;
* they are a convenient workload class for exercising the bag-evaluation
  engine (the bag answer of a UCQ is the pointwise *sum* of the bag answers
  of its disjuncts, following Chaudhuri and Vardi).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.relational.terms import Variable

__all__ = ["UnionOfConjunctiveQueries"]


class UnionOfConjunctiveQueries:
    """A finite union ``q = q_1 ∪ ... ∪ q_k`` of conjunctive queries.

    All disjuncts must have the same arity.  The head variable *names* may
    differ across disjuncts (each disjunct keeps its own head); what matters
    for evaluation is the sequence of answers positions.
    """

    __slots__ = ("_disjuncts", "_name")

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery], name: str = "Q") -> None:
        disjunct_list = tuple(disjuncts)
        if not disjunct_list:
            raise QueryError("a UCQ needs at least one disjunct")
        arities = {query.arity for query in disjunct_list}
        if len(arities) != 1:
            raise QueryError(f"all disjuncts of a UCQ must share the same arity, got {sorted(arities)}")
        self._disjuncts = disjunct_list
        self._name = name

    @property
    def name(self) -> str:
        """Display name of the UCQ."""
        return self._name

    @property
    def disjuncts(self) -> tuple[ConjunctiveQuery, ...]:
        """The member CQs, in order."""
        return self._disjuncts

    @property
    def arity(self) -> int:
        """Common arity of all disjuncts."""
        return self._disjuncts[0].arity

    def variables(self) -> frozenset[Variable]:
        """Union of the variables of all disjuncts."""
        result: set[Variable] = set()
        for query in self._disjuncts:
            result.update(query.variables())
        return frozenset(result)

    def relation_names(self) -> frozenset[str]:
        """Union of the relation names used by the disjuncts."""
        result: set[str] = set()
        for query in self._disjuncts:
            result.update(query.relation_names())
        return frozenset(result)

    def schema(self) -> DatabaseSchema:
        """Schema induced by all disjunct bodies (arities must agree)."""
        schema = self._disjuncts[0].schema()
        for query in self._disjuncts[1:]:
            schema = schema.union(query.schema())
        return schema

    def is_projection_free(self) -> bool:
        """``True`` when every disjunct is projection-free."""
        return all(query.is_projection_free() for query in self._disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self._disjuncts)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionOfConjunctiveQueries):
            return NotImplemented
        return self._disjuncts == other._disjuncts

    def __hash__(self) -> int:
        return hash(self._disjuncts)

    def __str__(self) -> str:
        return " UNION ".join(str(query) for query in self._disjuncts)

    def __repr__(self) -> str:
        return f"UnionOfConjunctiveQueries({self._name!r}, {len(self._disjuncts)} disjuncts)"

    @classmethod
    def of(cls, *disjuncts: ConjunctiveQuery, name: str = "Q") -> "UnionOfConjunctiveQueries":
        """Variadic constructor: ``UnionOfConjunctiveQueries.of(q1, q2)``."""
        return cls(disjuncts, name=name)
