"""Pretty printers for queries, instances and containment results.

The printers produce the notation used throughout the paper (datalog rules
with multiplicity superscripts, bags written as ``{fact^k, ...}``) so that
examples, CLI output and test failure messages read like the paper itself.
"""

from __future__ import annotations

from typing import Iterable

from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance, SetInstance
from repro.relational.terms import Term

__all__ = [
    "format_term",
    "format_atom",
    "format_query",
    "format_ucq",
    "format_set_instance",
    "format_bag_instance",
    "format_answer_bag",
]


def format_term(term: Term) -> str:
    """Render a term the way the paper writes it (canonical constants as ``^x``)."""
    return str(term)


def format_atom(atom: Atom, multiplicity: int = 1) -> str:
    """Render ``R^k(t1, ..., tn)``, omitting the superscript when ``k == 1``."""
    args = ", ".join(format_term(term) for term in atom.terms)
    if multiplicity == 1:
        return f"{atom.relation}({args})"
    return f"{atom.relation}^{multiplicity}({args})"


def format_query(query: ConjunctiveQuery) -> str:
    """Render a CQ as a datalog rule with multiplicity superscripts."""
    head_args = ", ".join(format_term(variable) for variable in query.head)
    body = ", ".join(
        format_atom(atom, multiplicity) for atom, multiplicity in query.body.items()
    )
    return f"{query.name}({head_args}) <- {body}"


def format_ucq(ucq: UnionOfConjunctiveQueries) -> str:
    """Render a UCQ, one disjunct per line."""
    return "\n".join(format_query(query) for query in ucq)


def format_set_instance(instance: SetInstance) -> str:
    """Render a set instance as ``{fact, fact, ...}``."""
    return "{" + ", ".join(format_atom(fact) for fact in instance) + "}"


def format_bag_instance(bag: BagInstance) -> str:
    """Render a bag instance as ``{fact^k, ...}`` (the paper's ``I^µ``)."""
    return "{" + ", ".join(format_atom(fact, count) for fact, count in bag.items()) + "}"


def format_answer_bag(answers: Iterable[tuple[tuple[Term, ...], int]]) -> str:
    """Render a bag of answer tuples as ``{(c1, c2)^10, ...}``."""
    parts = []
    for answer_tuple, multiplicity in answers:
        rendered = ", ".join(format_term(term) for term in answer_tuple)
        parts.append(f"({rendered})^{multiplicity}")
    return "{" + ", ".join(parts) + "}"
