"""Query model: conjunctive queries, unions of CQs, parser, printer, builder."""

from repro.queries.builder import QueryBuilder
from repro.queries.cq import BodyAtom, ConjunctiveQuery
from repro.queries.parser import parse_atom, parse_cq, parse_term, parse_ucq
from repro.queries.printer import (
    format_answer_bag,
    format_atom,
    format_bag_instance,
    format_query,
    format_set_instance,
    format_term,
    format_ucq,
)
from repro.queries.ucq import UnionOfConjunctiveQueries

__all__ = [
    "BodyAtom",
    "ConjunctiveQuery",
    "QueryBuilder",
    "UnionOfConjunctiveQueries",
    "format_answer_bag",
    "format_atom",
    "format_bag_instance",
    "format_query",
    "format_set_instance",
    "format_term",
    "format_ucq",
    "parse_atom",
    "parse_cq",
    "parse_term",
    "parse_ucq",
]
