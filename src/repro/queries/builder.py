"""A fluent builder for conjunctive queries.

The builder is the programmatic alternative to the datalog parser::

    q = (QueryBuilder("q")
         .head("x1", "x2")
         .atom("R", "x1", "y1", multiplicity=2)
         .atom("R", "x1", "y2")
         .atom("P", "y2", "y3", multiplicity=2)
         .atom("P", "x2", "y4")
         .build())

String arguments are interpreted with the same conventions as the parser
(identifiers starting with ``x y z u v w`` are variables, other identifiers
and integers are constants, ``?name`` forces a variable).  Already-built
:class:`Term` objects are accepted verbatim, so the builder composes cleanly
with hand-constructed terms.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import DEFAULT_VARIABLE_PREFIXES, parse_term
from repro.relational.atoms import Atom
from repro.relational.terms import Term, Variable, is_term

__all__ = ["QueryBuilder"]


class QueryBuilder:
    """Incrementally assemble a :class:`ConjunctiveQuery`."""

    def __init__(self, name: str = "q", variable_prefixes: frozenset[str] = DEFAULT_VARIABLE_PREFIXES) -> None:
        self._name = name
        self._variable_prefixes = variable_prefixes
        self._head: list[Variable] = []
        self._body: dict[Atom, int] = {}

    # ------------------------------------------------------------------ #
    # Term coercion
    # ------------------------------------------------------------------ #
    def _coerce(self, value: object) -> Term:
        if is_term(value):
            return value  # type: ignore[return-value]
        if isinstance(value, str):
            return parse_term(value, self._variable_prefixes)
        return parse_term(repr(value) if not isinstance(value, int) else str(value), self._variable_prefixes)

    def _coerce_variable(self, value: object) -> Variable:
        term = self._coerce(value)
        if not isinstance(term, Variable):
            raise QueryError(f"head positions must be variables, got {term!r}")
        return term

    # ------------------------------------------------------------------ #
    # Fluent API
    # ------------------------------------------------------------------ #
    def head(self, *variables: object) -> "QueryBuilder":
        """Set (replace) the head variables."""
        self._head = [self._coerce_variable(variable) for variable in variables]
        return self

    def add_head(self, variable: object) -> "QueryBuilder":
        """Append a single head variable."""
        self._head.append(self._coerce_variable(variable))
        return self

    def atom(self, relation: str, *terms: object, multiplicity: int = 1) -> "QueryBuilder":
        """Add ``multiplicity`` occurrences of ``relation(terms...)`` to the body."""
        if multiplicity < 1:
            raise QueryError(f"multiplicity must be positive, got {multiplicity}")
        built = Atom(relation, tuple(self._coerce(term) for term in terms))
        self._body[built] = self._body.get(built, 0) + multiplicity
        return self

    def atoms(self, atoms: Iterable[Atom]) -> "QueryBuilder":
        """Add already-built atoms (each occurrence counts once)."""
        for atom in atoms:
            self._body[atom] = self._body.get(atom, 0) + 1
        return self

    def build(self) -> ConjunctiveQuery:
        """Produce the immutable query; the builder can keep being used."""
        return ConjunctiveQuery(tuple(self._head), dict(self._body), name=self._name)
