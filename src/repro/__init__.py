"""repro — bag containment of projection-free conjunctive queries.

A production-quality reproduction of *“Attacking Diophantus: Solving a
Special Case of Bag Containment”* (Konstantinidis & Mogavero, PODS 2019).

The package decides whether a projection-free conjunctive query is
bag-contained in an arbitrary conjunctive query by encoding the problem as a
monomial–polynomial Diophantine inequality and solving the inequality via a
homogeneous linear system, exactly as in the paper.  It also ships the full
substrate the decision procedure stands on: a relational model with bag
instances, a query model with bag representation, evaluation engines for
set / bag / bag-set semantics, Chandra–Merlin set containment, exact linear
feasibility solvers, brute-force baselines, workload generators, and the
hardness reductions.

Quick start
-----------
>>> from repro import parse_cq, decide_bag_containment
>>> q1 = parse_cq("q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)")
>>> q2 = parse_cq("q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)")
>>> decide_bag_containment(q1, q2).contained
True
>>> decide_bag_containment(q2, q1).contained
False
"""

from repro.baselines import bounded_bag_refuter, cross_check, random_bag_refuter
from repro.containment import (
    are_bag_set_equivalent,
    are_set_equivalent,
    core as minimal_core,  # `core` itself would shadow the repro.core subpackage
    decide_bag_set_containment,
    decide_set_containment,
    is_set_contained,
)
from repro.core import (
    BagContainmentResult,
    ContainmentCounterexample,
    ContainmentSpectrum,
    MpiEncoding,
    Relationship,
    are_bag_equivalent,
    compare,
    decide_bag_containment,
    encode,
    encode_most_general,
    is_bag_contained,
    most_general_probe_tuple,
    probe_tuples,
    three_colorability_instance,
)
from repro.diophantine import (
    Monomial,
    MonomialPolynomialInequality,
    Polynomial,
    decide_mpi,
)
from repro.engine import (
    BagBatchEvaluator,
    EngineCache,
    MatchPlan,
    compile_plan,
    containment_mappings_many,
    count_many,
    default_cache,
    evaluate_bag_many,
    get_backend,
    set_default_backend,
    use_backend,
)
from repro.evaluation import (
    AnswerBag,
    evaluate_bag,
    evaluate_bag_set,
    evaluate_set,
)
from repro.queries import (
    ConjunctiveQuery,
    QueryBuilder,
    UnionOfConjunctiveQueries,
    parse_cq,
    parse_ucq,
)
from repro.relational import (
    Atom,
    BagInstance,
    Constant,
    DatabaseSchema,
    RelationSchema,
    SetInstance,
    Substitution,
    Variable,
)
from repro.verify import (
    CampaignConfig,
    CampaignReport,
    OracleConfig,
    OracleReport,
    run_campaign,
    run_differential_oracle,
    shrink_pair,
)

__version__ = "1.0.0"

__all__ = [
    "AnswerBag",
    "Atom",
    "BagBatchEvaluator",
    "BagContainmentResult",
    "BagInstance",
    "CampaignConfig",
    "CampaignReport",
    "ConjunctiveQuery",
    "Constant",
    "ContainmentCounterexample",
    "ContainmentSpectrum",
    "DatabaseSchema",
    "EngineCache",
    "MatchPlan",
    "Monomial",
    "MonomialPolynomialInequality",
    "MpiEncoding",
    "OracleConfig",
    "OracleReport",
    "Polynomial",
    "QueryBuilder",
    "RelationSchema",
    "Relationship",
    "SetInstance",
    "Substitution",
    "UnionOfConjunctiveQueries",
    "Variable",
    "are_bag_equivalent",
    "are_bag_set_equivalent",
    "are_set_equivalent",
    "bounded_bag_refuter",
    "compare",
    "compile_plan",
    "containment_mappings_many",
    "minimal_core",
    "count_many",
    "cross_check",
    "decide_bag_containment",
    "decide_bag_set_containment",
    "decide_mpi",
    "decide_set_containment",
    "default_cache",
    "encode",
    "encode_most_general",
    "evaluate_bag",
    "evaluate_bag_many",
    "evaluate_bag_set",
    "evaluate_set",
    "get_backend",
    "is_bag_contained",
    "is_set_contained",
    "most_general_probe_tuple",
    "parse_cq",
    "parse_ucq",
    "probe_tuples",
    "random_bag_refuter",
    "run_campaign",
    "run_differential_oracle",
    "set_default_backend",
    "shrink_pair",
    "three_colorability_instance",
    "use_backend",
    "__version__",
]
