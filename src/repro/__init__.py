"""repro — bag containment of projection-free conjunctive queries.

A production-quality reproduction of *“Attacking Diophantus: Solving a
Special Case of Bag Containment”* (Konstantinidis & Mogavero, PODS 2019).

The package decides whether a projection-free conjunctive query is
bag-contained in an arbitrary conjunctive query by encoding the problem as a
monomial–polynomial Diophantine inequality and solving the inequality via a
homogeneous linear system, exactly as in the paper.  It also ships the full
substrate the decision procedure stands on: a relational model with bag
instances, a query model with bag representation, evaluation engines for
set / bag / bag-set semantics, Chandra–Merlin set containment, exact linear
feasibility solvers, brute-force baselines, workload generators, and the
hardness reductions.

Quick start
-----------
>>> from repro import Session, parse_cq
>>> session = Session()
>>> q1 = parse_cq("q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)")
>>> q2 = parse_cq("q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)")
>>> session.decide(q1, q2).verdict
True
>>> session.decide(q2, q1).verdict
False

The loose top-level functions of earlier releases (``decide_bag_containment``
and friends) keep working as thin deprecation shims over a default module
session; see the README's *Session API* section for the migration table.
"""

from repro.baselines import bounded_bag_refuter, random_bag_refuter
from repro.containment import (
    SetContainmentResult,
    core as minimal_core,  # `core` itself would shadow the repro.core subpackage
)
from repro.core import (
    BagContainmentResult,
    ContainmentCounterexample,
    ContainmentSpectrum,
    MpiEncoding,
    Relationship,
    most_general_probe_tuple,
    probe_tuples,
    three_colorability_instance,
)
from repro.diophantine import (
    Monomial,
    MonomialPolynomialInequality,
    Polynomial,
    decide_mpi,
)
from repro.engine import (
    BagBatchEvaluator,
    EngineCache,
    MatchPlan,
    compile_plan,
    containment_mappings_many,
    count_many,
    default_cache,
    get_backend,
)
from repro.evaluation import AnswerBag
from repro.queries import (
    ConjunctiveQuery,
    QueryBuilder,
    UnionOfConjunctiveQueries,
    parse_cq,
    parse_ucq,
)
from repro.relational import (
    Atom,
    BagInstance,
    Constant,
    DatabaseSchema,
    RelationSchema,
    SetInstance,
    Substitution,
    Variable,
)
from repro.session import (
    ContainmentRequest,
    EvaluationRequest,
    Limits,
    MpiRequest,
    Outcome,
    Session,
    SessionSpec,
    backend_names,
    current_session,
    default_session,
    register_backend,
    register_strategy,
    strategy_names,
    use_session,
)

# The legacy service-style call paths live on as deprecation shims over the
# default module session (repro.session.shims); calling one emits a
# DeprecationWarning pointing at its Session replacement.
from repro.session.shims import (
    are_bag_equivalent,
    are_bag_set_equivalent,
    are_set_equivalent,
    compare,
    cross_check,
    decide_bag_containment,
    decide_bag_set_containment,
    decide_set_containment,
    encode,
    encode_most_general,
    evaluate_bag,
    evaluate_bag_many,
    evaluate_bag_set,
    evaluate_set,
    is_bag_contained,
    is_set_contained,
    run_campaign,
    run_differential_oracle,
    set_default_backend,
    use_backend,
)
from repro.verify import (
    CampaignConfig,
    CampaignReport,
    OracleConfig,
    OracleReport,
    shrink_pair,
)

__version__ = "1.1.0"

__all__ = [
    "AnswerBag",
    "Atom",
    "BagBatchEvaluator",
    "BagContainmentResult",
    "BagInstance",
    "CampaignConfig",
    "CampaignReport",
    "ConjunctiveQuery",
    "Constant",
    "ContainmentCounterexample",
    "ContainmentRequest",
    "ContainmentSpectrum",
    "DatabaseSchema",
    "EngineCache",
    "EvaluationRequest",
    "Limits",
    "MatchPlan",
    "Monomial",
    "MonomialPolynomialInequality",
    "MpiEncoding",
    "MpiRequest",
    "OracleConfig",
    "OracleReport",
    "Outcome",
    "Polynomial",
    "QueryBuilder",
    "RelationSchema",
    "Relationship",
    "Session",
    "SessionSpec",
    "SetContainmentResult",
    "SetInstance",
    "Substitution",
    "UnionOfConjunctiveQueries",
    "Variable",
    "are_bag_equivalent",
    "are_bag_set_equivalent",
    "are_set_equivalent",
    "backend_names",
    "bounded_bag_refuter",
    "compare",
    "compile_plan",
    "containment_mappings_many",
    "count_many",
    "cross_check",
    "current_session",
    "decide_bag_containment",
    "decide_bag_set_containment",
    "decide_mpi",
    "decide_set_containment",
    "default_cache",
    "default_session",
    "encode",
    "encode_most_general",
    "evaluate_bag",
    "evaluate_bag_many",
    "evaluate_bag_set",
    "evaluate_set",
    "get_backend",
    "is_bag_contained",
    "is_set_contained",
    "minimal_core",
    "most_general_probe_tuple",
    "parse_cq",
    "parse_ucq",
    "probe_tuples",
    "random_bag_refuter",
    "register_backend",
    "register_strategy",
    "run_campaign",
    "run_differential_oracle",
    "set_default_backend",
    "shrink_pair",
    "strategy_names",
    "three_colorability_instance",
    "use_backend",
    "use_session",
    "__version__",
]
