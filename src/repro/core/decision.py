"""The bag-containment decision procedures.

Three strategies are provided, all implementing the same characterisation
(bag containment of a projection-free CQ into a generic CQ) at different
points of the paper:

``most-general`` (default, Theorem 5.3)
    Encode the single MPI associated with the most-general probe tuple and
    decide it via the linear-system reduction.  This is the production path.

``all-probes`` (Corollary 3.1)
    Enumerate every probe tuple, check unifiability with the containing
    head, and decide one MPI per probe tuple.  Exponential in the arity of
    the containee; kept as a reference implementation and for the E7 bench.

``bounded-guess`` (Theorem 5.1)
    For every probe tuple, enumerate the candidate natural vectors ``d``
    within the solution-size bound and look for one violating every
    containment-mapping inequality.  This mirrors the ΠP2 guess-&-check
    procedure literally (and is therefore exponential-time when run
    deterministically); only suitable for small instances and cross-checks.

All strategies return a :class:`BagContainmentResult` that carries the MPI
encodings they inspected and, for negative answers, a verified
counterexample certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.core.certificates import (
    ContainmentCounterexample,
    counterexample_from_witness,
    uniform_counterexample,
)
from repro.core.encoding import MpiEncoding, encode_many, encode_most_general
from repro.core.probe_tuples import iter_probe_tuples
from repro.diophantine.bounds import solution_component_bound
from repro.diophantine.solver import (
    MpiDecision,
    decide_mpi,
    decide_mpi_via_lp,
    witness_from_linear_solution,
)
from repro.exceptions import ContainmentError, EnumerationBudgetError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.terms import Term

__all__ = [
    "BagContainmentResult",
    "StrategyFn",
    "decide_bag_containment",
    "is_bag_contained",
    "are_bag_equivalent",
    "decide_via_most_general_probe",
    "decide_via_all_probes",
    "decide_via_bounded_guess",
    "register_strategy",
    "strategy_names",
    "STRATEGIES",
]

#: Names of the built-in decision strategies.
STRATEGIES = ("most-general", "all-probes", "bounded-guess")

#: A registered strategy: decide ``containee ⊑b containing`` and return a
#: :class:`BagContainmentResult`.  Strategies receive every tunable as a
#: keyword and must tolerate tunables they do not use (``use_lp`` for
#: enumeration strategies, ``max_candidates`` for solver strategies).
StrategyFn = Callable[..., "BagContainmentResult"]


@dataclass(frozen=True)
class BagContainmentResult:
    """Outcome of a bag-containment decision.

    ``encodings`` contains one :class:`MpiEncoding` per probe tuple the
    strategy inspected (a single one for the default strategy);
    ``mpi_decisions`` the corresponding solver outcomes, where available.
    """

    contained: bool
    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    strategy: str
    reason: str
    encodings: tuple[MpiEncoding, ...] = ()
    mpi_decisions: tuple[MpiDecision, ...] = ()
    counterexample: ContainmentCounterexample | None = None
    failing_probe: tuple[Term, ...] | None = None
    verified: bool = field(default=False)

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.contained

    def explain(self) -> str:
        """A human-readable explanation of the verdict."""
        verdict = "⊑b" if self.contained else "⋢b"
        lines = [f"{self.containee.name} {verdict} {self.containing.name} [{self.strategy}]: {self.reason}"]
        if self.counterexample is not None:
            lines.append("counterexample: " + self.counterexample.describe())
        return "\n".join(lines)


def _negative_result(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    strategy: str,
    reason: str,
    encoding: MpiEncoding | None,
    decision: MpiDecision | None,
    counterexample: ContainmentCounterexample | None,
    verify: bool,
) -> BagContainmentResult:
    verified = False
    if counterexample is not None and verify:
        verified = counterexample.verify(containee, containing)
        if not verified:
            raise ContainmentError(
                "internal error: a negative verdict produced a counterexample that does not verify"
            )
    return BagContainmentResult(
        contained=False,
        containee=containee,
        containing=containing,
        strategy=strategy,
        reason=reason,
        encodings=(encoding,) if encoding is not None else (),
        mpi_decisions=(decision,) if decision is not None else (),
        counterexample=counterexample,
        failing_probe=encoding.probe if encoding is not None else None,
        verified=verified,
    )


def decide_via_most_general_probe(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    use_lp: bool = False,
    verify_counterexamples: bool = True,
) -> BagContainmentResult:
    """Theorem 5.3: decide containment through the most-general probe tuple only."""
    containee.require_projection_free()
    encoding = encode_most_general(containee, containing)

    if not encoding.probe_unifiable_with_containing:
        counterexample = uniform_counterexample(encoding)
        return _negative_result(
            containee,
            containing,
            "most-general",
            "the most-general probe tuple is not unifiable with the head of the containing query",
            encoding,
            None,
            counterexample,
            verify_counterexamples,
        )

    decision = decide_mpi_via_lp(encoding.inequality) if use_lp else decide_mpi(encoding.inequality)
    if decision.solvable:
        assert decision.witness is not None
        counterexample = counterexample_from_witness(encoding, decision.witness)
        return _negative_result(
            containee,
            containing,
            "most-general",
            "the associated monomial-polynomial inequality admits a Diophantine solution",
            encoding,
            decision,
            counterexample,
            verify_counterexamples,
        )

    return BagContainmentResult(
        contained=True,
        containee=containee,
        containing=containing,
        strategy="most-general",
        reason="the associated monomial-polynomial inequality has no Diophantine solution",
        encodings=(encoding,),
        mpi_decisions=(decision,),
    )


def decide_via_all_probes(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    use_lp: bool = False,
    verify_counterexamples: bool = True,
) -> BagContainmentResult:
    """Corollary 3.1: decide containment by checking one MPI per probe tuple."""
    containee.require_projection_free()
    encodings: list[MpiEncoding] = []
    decisions: list[MpiDecision] = []

    for encoding in encode_many(containee, containing, iter_probe_tuples(containee)):
        probe = encoding.probe
        encodings.append(encoding)

        if not encoding.probe_unifiable_with_containing:
            counterexample = uniform_counterexample(encoding)
            return _negative_result(
                containee,
                containing,
                "all-probes",
                f"probe tuple ({', '.join(str(t) for t in probe)}) is not unifiable with the containing head",
                encoding,
                None,
                counterexample,
                verify_counterexamples,
            )

        decision = decide_mpi_via_lp(encoding.inequality) if use_lp else decide_mpi(encoding.inequality)
        decisions.append(decision)
        if decision.solvable:
            assert decision.witness is not None
            counterexample = counterexample_from_witness(encoding, decision.witness)
            return _negative_result(
                containee,
                containing,
                "all-probes",
                f"the inequality at probe tuple ({', '.join(str(t) for t in probe)}) admits a Diophantine solution",
                encoding,
                decision,
                counterexample,
                verify_counterexamples,
            )

    return BagContainmentResult(
        contained=True,
        containee=containee,
        containing=containing,
        strategy="all-probes",
        reason="no probe tuple yields a solvable monomial-polynomial inequality",
        encodings=tuple(encodings),
        mpi_decisions=tuple(decisions),
    )


def _bounded_vectors(dimension: int, bound: int) -> Iterator[tuple[int, ...]]:
    """Enumerate natural vectors of the given dimension with component sum ≤ bound."""

    def recurse(prefix: tuple[int, ...], remaining: int, positions_left: int) -> Iterator[tuple[int, ...]]:
        if positions_left == 0:
            yield prefix
            return
        for value in range(remaining + 1):
            yield from recurse(prefix + (value,), remaining - value, positions_left - 1)

    yield from recurse((), bound, dimension)


def decide_via_bounded_guess(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    bound: int | None = None,
    max_candidates: int = 2_000_000,
    verify_counterexamples: bool = True,
) -> BagContainmentResult:
    """Theorem 5.1: the guess-&-check criterion run deterministically.

    For every probe tuple ``t`` the procedure enumerates the natural vectors
    ``d`` with component sum at most *bound* (by default the Lemma 5.1 bound
    ``6·n³·φ`` of the associated system) and declares non-containment when
    some ``d`` satisfies ``(e − e_h)ᵀ·d > 0`` for **every** containment
    mapping ``h``.  The counterexample bag is then built directly from ``d``
    through the Theorem 4.1 construction.

    The enumeration is exponential; *max_candidates* protects against
    accidental use on large instances by raising :class:`ContainmentError`.
    """
    containee.require_projection_free()
    encodings: list[MpiEncoding] = []

    for encoding in encode_many(containee, containing, iter_probe_tuples(containee)):
        probe = encoding.probe
        encodings.append(encoding)

        if not encoding.probe_unifiable_with_containing:
            counterexample = uniform_counterexample(encoding)
            return _negative_result(
                containee,
                containing,
                "bounded-guess",
                f"probe tuple ({', '.join(str(t) for t in probe)}) is not unifiable with the containing head",
                encoding,
                None,
                counterexample,
                verify_counterexamples,
            )

        system = encoding.inequality.to_linear_system()
        effective_bound = bound if bound is not None else solution_component_bound(system)
        dimension = encoding.dimension

        candidate_count_estimate = (effective_bound + 1) ** dimension
        if candidate_count_estimate > max_candidates:
            raise EnumerationBudgetError(
                f"bounded-guess enumeration would inspect about {candidate_count_estimate} vectors "
                f"(bound {effective_bound}, dimension {dimension}); "
                "use the most-general strategy or lower the bound explicitly"
            )

        for candidate in _bounded_vectors(dimension, effective_bound):
            if all(value == 0 for value in candidate):
                continue
            if system.is_solution(candidate):
                witness = witness_from_linear_solution(encoding.inequality, candidate)
                counterexample = counterexample_from_witness(encoding, witness)
                return _negative_result(
                    containee,
                    containing,
                    "bounded-guess",
                    f"the bounded vector {candidate} violates every containment-mapping inequality "
                    f"at probe tuple ({', '.join(str(t) for t in probe)})",
                    encoding,
                    None,
                    counterexample,
                    verify_counterexamples,
                )

    return BagContainmentResult(
        contained=True,
        containee=containee,
        containing=containing,
        strategy="bounded-guess",
        reason="no bounded natural vector violates the containment-mapping inequalities",
        encodings=tuple(encodings),
    )


def _most_general_strategy(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    *,
    use_lp: bool = False,
    verify_counterexamples: bool = True,
    max_candidates: int | None = None,
) -> BagContainmentResult:
    return decide_via_most_general_probe(
        containee, containing, use_lp=use_lp, verify_counterexamples=verify_counterexamples
    )


def _all_probes_strategy(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    *,
    use_lp: bool = False,
    verify_counterexamples: bool = True,
    max_candidates: int | None = None,
) -> BagContainmentResult:
    return decide_via_all_probes(
        containee, containing, use_lp=use_lp, verify_counterexamples=verify_counterexamples
    )


def _bounded_guess_strategy(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    *,
    use_lp: bool = False,
    verify_counterexamples: bool = True,
    max_candidates: int | None = None,
) -> BagContainmentResult:
    kwargs = {} if max_candidates is None else {"max_candidates": max_candidates}
    return decide_via_bounded_guess(
        containee, containing, verify_counterexamples=verify_counterexamples, **kwargs
    )


#: The pluggable strategy registry: name → :data:`StrategyFn`.
_STRATEGY_REGISTRY: dict[str, StrategyFn] = {
    "most-general": _most_general_strategy,
    "all-probes": _all_probes_strategy,
    "bounded-guess": _bounded_guess_strategy,
}


def strategy_names() -> tuple[str, ...]:
    """Every registered strategy name (built-ins first, then plugins)."""
    return tuple(_STRATEGY_REGISTRY)


def register_strategy(name: str, strategy: StrategyFn, replace: bool = False) -> None:
    """Register a decision strategy under *name*.

    Once registered, the name works everywhere a built-in does — sessions,
    :func:`decide_bag_containment`, the differential oracle and the CLI.
    Re-registering an existing name requires ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ContainmentError("a strategy name must be a non-empty string")
    if name in _STRATEGY_REGISTRY and not replace:
        raise ContainmentError(
            f"strategy {name!r} is already registered (pass replace=True to override)"
        )
    _STRATEGY_REGISTRY[name] = strategy


def decide_bag_containment(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    strategy: str = "most-general",
    use_lp: bool = False,
    verify_counterexamples: bool = True,
    max_candidates: int | None = None,
) -> BagContainmentResult:
    """Decide ``containee ⊑b containing`` with the requested strategy.

    The containee must be projection-free; the containing query is an
    arbitrary CQ.  The strategy is resolved through the registry, so plugin
    strategies added via :func:`register_strategy` are selectable by name;
    see the module docstring for the built-ins.  ``max_candidates`` caps the
    bounded-guess enumeration (ignored by the solver strategies).
    """
    try:
        fn = _STRATEGY_REGISTRY[strategy]
    except KeyError:
        raise ContainmentError(
            f"unknown strategy {strategy!r}; expected one of {strategy_names()}"
        ) from None
    return fn(
        containee,
        containing,
        use_lp=use_lp,
        verify_counterexamples=verify_counterexamples,
        max_candidates=max_candidates,
    )


def is_bag_contained(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery, strategy: str = "most-general"
) -> bool:
    """Boolean shortcut for :func:`decide_bag_containment`."""
    return decide_bag_containment(containee, containing, strategy=strategy).contained


def are_bag_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Bag equivalence of two projection-free CQs (containment both ways)."""
    return is_bag_contained(first, second) and is_bag_contained(second, first)
