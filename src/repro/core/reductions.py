"""Reductions connecting bag containment to other problems.

Two constructive reductions from the paper (and its related work) are
implemented:

* **3-colourability → bag containment** (Theorem 5.4).  For a graph ``G``
  the Boolean ground query ``q_T ← R(a,b), R(b,c), R(c,a)`` (the triangle)
  and the Boolean query ``q_G`` encoding the edges of ``G`` satisfy:
  ``G`` is 3-colourable iff ``q_T ⊑b q_T ∧ q_G``.  Since ``q_T`` is ground
  (hence projection-free) this yields NPTime-hardness of the problem the
  paper solves, and gives the library an endless supply of hard instances
  (experiment E8).

* **Polynomial pair → UCQs** (Ioannidis–Ramakrishnan).  Two polynomials
  ``P1, P2`` with natural coefficients and no constant terms are encoded as
  Boolean UCQs ``Q1, Q2`` over unary relations ``U_1 ... U_n`` (one per
  unknown) such that for every bag instance the bag answers satisfy
  ``Q1^µ() = P1(ξ)`` and ``Q2^µ() = P2(ξ)`` where ``ξ_i`` is the total
  multiplicity of relation ``U_i``; hence ``Q1 ⊑b Q2`` iff
  ``P1(ξ) ≤ P2(ξ)`` for every natural ``ξ``.  This is the construction that
  makes UCQ bag containment undecidable; here it is used the other way
  around, as a generator of evaluation workloads with known ground truth.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.diophantine.polynomials import Polynomial
from repro.exceptions import WorkloadError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.atoms import Atom
from repro.relational.instances import BagInstance
from repro.relational.terms import Constant, Variable

__all__ = [
    "graph_query",
    "triangle_query",
    "three_colorability_instance",
    "polynomial_to_ucq",
    "polynomial_pair_to_ucqs",
    "bag_for_polynomial_point",
]

#: The three colour constants of the triangle query.
_COLOR_NAMES = ("col_a", "col_b", "col_c")

#: Relation name used for graph edges.
EDGE_RELATION = "E"


def triangle_query(name: str = "qT") -> ConjunctiveQuery:
    """The ground triangle query ``q_T ← E(a,b), E(b,c), E(c,a)``."""
    a, b, c = (Constant(color) for color in _COLOR_NAMES)
    body = [Atom(EDGE_RELATION, (a, b)), Atom(EDGE_RELATION, (b, c)), Atom(EDGE_RELATION, (c, a))]
    return ConjunctiveQuery((), body, name=name)


def graph_query(
    edges: Iterable[tuple[Hashable, Hashable]], name: str = "qG"
) -> ConjunctiveQuery:
    """The Boolean query whose body is the edge set of a *directed* graph.

    Every vertex ``v`` becomes the existential variable ``x_v``; every edge
    ``(v, w)`` becomes the atom ``E(x_v, x_w)``.  For the 3-colourability
    reduction an undirected graph should be passed with both orientations of
    each edge (:func:`three_colorability_instance` does this automatically).
    """
    atoms = []
    for source, target in edges:
        atoms.append(
            Atom(EDGE_RELATION, (Variable(f"x_{source}"), Variable(f"x_{target}")))
        )
    if not atoms:
        raise WorkloadError("the graph must have at least one edge")
    return ConjunctiveQuery((), atoms, name=name)


def three_colorability_instance(
    edges: Iterable[tuple[Hashable, Hashable]]
) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """The bag-containment instance of Theorem 5.4 for an undirected graph.

    Returns the pair ``(q_T, q_T ∧ q_G)``: the graph is 3-colourable iff the
    first query is bag-contained in the second.  Both orientations of every
    edge are added so that a homomorphism into the (symmetrically closed)
    triangle exists exactly when the graph has a proper 3-colouring.
    """
    oriented: list[tuple[Hashable, Hashable]] = []
    for source, target in edges:
        if source == target:
            raise WorkloadError(f"self-loop ({source}, {target}) makes the graph trivially non-3-colourable")
        oriented.append((source, target))
        oriented.append((target, source))

    symmetric_triangle_edges = [
        (_COLOR_NAMES[0], _COLOR_NAMES[1]),
        (_COLOR_NAMES[1], _COLOR_NAMES[0]),
        (_COLOR_NAMES[1], _COLOR_NAMES[2]),
        (_COLOR_NAMES[2], _COLOR_NAMES[1]),
        (_COLOR_NAMES[2], _COLOR_NAMES[0]),
        (_COLOR_NAMES[0], _COLOR_NAMES[2]),
    ]
    triangle_atoms = [
        Atom(EDGE_RELATION, (Constant(a), Constant(b))) for a, b in symmetric_triangle_edges
    ]
    containee = ConjunctiveQuery((), triangle_atoms, name="qT")
    containing = containee.conjoin(graph_query(oriented, name="qG"), name="qT&qG")
    return containee, containing


# --------------------------------------------------------------------------- #
# Ioannidis–Ramakrishnan style polynomial encoding
# --------------------------------------------------------------------------- #
def _unknown_relation(index: int) -> str:
    return f"U{index + 1}"


def polynomial_to_ucq(polynomial: Polynomial, name: str = "Q") -> UnionOfConjunctiveQueries:
    """Encode a polynomial with natural coefficients as a Boolean UCQ.

    The monomial ``a · u_1^{e_1} ··· u_n^{e_n}`` becomes ``a`` identical
    Boolean disjuncts, each containing ``e_i`` atoms ``U_i(y)`` over pairwise
    distinct existential variables.  On any bag instance the bag answer of
    such a disjunct is ``Π_i (Σ_v µ(U_i(v)))^{e_i}``, so with
    ``ξ_i = Σ_v µ(U_i(v))`` the answer of the UCQ is exactly the polynomial
    value ``P(ξ)``.
    """
    if polynomial.has_constant_term():
        raise WorkloadError("the encoding requires polynomials without constant terms")
    if not polynomial.is_integral():
        raise WorkloadError("the encoding requires integer exponents")

    disjuncts: list[ConjunctiveQuery] = []
    for monomial_index, monomial in enumerate(polynomial):
        coefficient = monomial.coefficient
        if coefficient.denominator != 1:
            raise WorkloadError("the encoding requires natural coefficients")
        atoms: list[Atom] = []
        variable_counter = 0
        for unknown_index, exponent in enumerate(monomial.integer_exponents()):
            for _ in range(exponent):
                atoms.append(
                    Atom(_unknown_relation(unknown_index), (Variable(f"y{variable_counter}"),))
                )
                variable_counter += 1
        disjunct = ConjunctiveQuery((), atoms, name=f"{name}_{monomial_index}")
        disjuncts.extend([disjunct] * int(coefficient))
    if not disjuncts:
        raise WorkloadError("cannot encode the zero polynomial as a UCQ")
    return UnionOfConjunctiveQueries(disjuncts, name=name)


def polynomial_pair_to_ucqs(
    left: Polynomial, right: Polynomial
) -> tuple[UnionOfConjunctiveQueries, UnionOfConjunctiveQueries]:
    """Encode two polynomials as the UCQ pair of the Ioannidis–Ramakrishnan reduction."""
    return polynomial_to_ucq(left, name="Q1"), polynomial_to_ucq(right, name="Q2")


def bag_for_polynomial_point(point: Sequence[int]) -> BagInstance:
    """The single-constant bag realising the unknown values *point*.

    The bag contains one fact ``U_i(v)`` with multiplicity ``point[i]`` for
    every unknown ``i`` with a positive value, so evaluating the encoded
    UCQs on it yields exactly the polynomial values at *point*.
    """
    value = Constant("v")
    counts = {}
    for index, multiplicity in enumerate(point):
        if multiplicity < 0:
            raise WorkloadError(f"polynomial points must be natural vectors, got {tuple(point)}")
        if multiplicity > 0:
            counts[Atom(_unknown_relation(index), (value,))] = int(multiplicity)
    return BagInstance(counts)
