"""High-level comparison of two queries under set and bag semantics.

Applications (query rewriting, view selection, cache reuse) rarely ask a
single containment question: they want to know how two queries relate in
*both* directions and under *both* semantics, and what that means for the
rewrite at hand.  :func:`compare` bundles the four underlying decisions into
a :class:`ContainmentSpectrum` with a compact verdict:

* ``EQUIVALENT`` — bag-equivalent: safe to substitute even for
  duplicate-sensitive aggregates (``SUM``, ``COUNT``);
* ``CONTAINED`` / ``CONTAINS`` — bag containment in exactly one direction:
  substitution under- or over-counts duplicates, but is safe for
  ``DISTINCT``/existence-style uses when set equivalence also holds;
* ``SET_EQUIVALENT_ONLY`` — classically interchangeable, but duplicate
  counts differ in both directions (the paper's q1/q2 situation);
* ``INCOMPARABLE`` — not even set containment holds in either direction;
* directions whose containee has projections are reported as ``None``
  (outside the fragment the paper proves decidable).

Undecided bag directions are *refined* before the verdict is derived: bag
containment implies set containment, so a direction whose set containment
fails is known **not** to hold under bags even when the decision procedure
could not run.  A direction that stays genuinely unknown after refinement
makes the verdict ``UNKNOWN`` — the comparison never reports a definite
relationship (``CONTAINED``, ``CONTAINS``, ``SET_CONTAINED_ONLY``, ...)
that the unknown direction could contradict.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.containment.set_containment import is_set_contained
from repro.core.decision import decide_bag_containment
from repro.exceptions import NotProjectionFreeError
from repro.queries.cq import ConjunctiveQuery

__all__ = ["Relationship", "ContainmentSpectrum", "compare"]


class Relationship(Enum):
    """Compact verdict of a two-query comparison."""

    EQUIVALENT = "bag-equivalent"
    CONTAINED = "bag-contained (left into right only)"
    CONTAINS = "bag-contains (right into left only)"
    SET_EQUIVALENT_ONLY = "set-equivalent but not bag-comparable"
    SET_CONTAINED_ONLY = "set-contained only"
    INCOMPARABLE = "incomparable"
    UNKNOWN = "outside the decidable fragment"


@dataclass(frozen=True)
class ContainmentSpectrum:
    """All four containment verdicts for a pair of queries.

    ``None`` for a bag direction means that direction's containee has
    existential variables, so it lies outside the fragment the paper solves.
    """

    left: ConjunctiveQuery
    right: ConjunctiveQuery
    set_forward: bool
    set_backward: bool
    bag_forward: bool | None
    bag_backward: bool | None

    def _refined_bag_directions(self) -> tuple[bool | None, bool | None]:
        """Bag directions with undecided values refined by the set results.

        Bag containment implies set containment, so ``None`` (undecidable)
        in a direction whose *set* containment fails refines to ``False``.
        A direction that stays ``None`` is genuinely open: its set
        containment holds, so both bag outcomes remain possible.
        """
        forward = self.bag_forward
        backward = self.bag_backward
        if forward is None and not self.set_forward:
            forward = False
        if backward is None and not self.set_backward:
            backward = False
        return forward, backward

    @property
    def relationship(self) -> Relationship:
        """The compact verdict derived from the four decisions.

        The verdict is conservative: if either refined bag direction is
        still unknown, the relationship is ``UNKNOWN`` — any definite
        answer (``EQUIVALENT`` through ``SET_CONTAINED_ONLY``) makes a
        claim about both directions, which the open one could contradict.
        """
        forward, backward = self._refined_bag_directions()
        if forward is None or backward is None:
            return Relationship.UNKNOWN
        if forward and backward:
            return Relationship.EQUIVALENT
        if forward:
            return Relationship.CONTAINED
        if backward:
            return Relationship.CONTAINS
        if self.set_forward and self.set_backward:
            return Relationship.SET_EQUIVALENT_ONLY
        if self.set_forward or self.set_backward:
            return Relationship.SET_CONTAINED_ONLY
        return Relationship.INCOMPARABLE

    def is_safe_substitution(self) -> bool:
        """Whether *right* can replace *left* without changing duplicate counts.

        True exactly when the two queries are bag-equivalent.
        """
        return self.relationship is Relationship.EQUIVALENT

    def is_safe_for_distinct(self) -> bool:
        """Whether the substitution is safe under ``SELECT DISTINCT`` (set equivalence)."""
        return self.set_forward and self.set_backward

    def describe(self) -> str:
        """A short human-readable summary."""
        def render(value: bool | None) -> str:
            return "n/a" if value is None else ("yes" if value else "no")

        return (
            f"{self.left.name} vs {self.right.name}: {self.relationship.value}\n"
            f"  set:  forward={render(self.set_forward)}  backward={render(self.set_backward)}\n"
            f"  bag:  forward={render(self.bag_forward)}  backward={render(self.bag_backward)}"
        )


def _bag_direction(containee: ConjunctiveQuery, containing: ConjunctiveQuery) -> bool | None:
    try:
        return decide_bag_containment(containee, containing).contained
    except NotProjectionFreeError:
        return None


def compare(left: ConjunctiveQuery, right: ConjunctiveQuery) -> ContainmentSpectrum:
    """Compare two queries under set and bag semantics, in both directions."""
    return ContainmentSpectrum(
        left=left,
        right=right,
        set_forward=is_set_contained(left, right),
        set_backward=is_set_contained(right, left),
        bag_forward=_bag_direction(left, right),
        bag_backward=_bag_direction(right, left),
    )
