"""Probe tuples (Definition 3.1) and the most-general probe tuple.

A probe tuple for a CQ ``q(x)`` is a tuple ``t`` of constants drawn from the
active domain of the canonical instance ``I_{q(x)}`` — i.e. the canonical
constants of the query's variables plus its language constants — that is
unifiable with the head ``x`` (consistent on repeated head variables).

The *most-general* probe tuple ``t⋆`` is the tuple of canonical constants of
the head variables themselves; Theorem 5.3 shows that deciding the single
MPI associated with ``t⋆`` suffices for bag containment.  The full
enumeration (and its reduction modulo renamings of the canonical constants,
mentioned after Definition 3.1) is kept for the Corollary 3.1 reference
path and for the test-suite's cross-checks.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Sequence

from repro.exceptions import UnificationError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.substitutions import unify_tuples
from repro.relational.terms import CanonicalConstant, Term, canonical

__all__ = [
    "most_general_probe_tuple",
    "probe_domain",
    "iter_probe_tuples",
    "probe_tuples",
    "is_probe_tuple",
    "canonical_probe_representative",
    "reduced_probe_tuples",
]


def most_general_probe_tuple(query: ConjunctiveQuery) -> tuple[Term, ...]:
    """``t⋆``: the head variables frozen to their canonical constants."""
    return tuple(canonical(variable) for variable in query.head)


def probe_domain(query: ConjunctiveQuery) -> tuple[Term, ...]:
    """The constants a probe tuple may use: ``adom(I_{q(x)})``.

    This is the set of canonical constants of *all* query variables together
    with the language constants of the query, in a deterministic order.
    """
    domain = set(query.canonical_instance().active_domain())
    return tuple(sorted(domain, key=str))


def is_probe_tuple(query: ConjunctiveQuery, candidate: Sequence[Term]) -> bool:
    """Check both conditions of Definition 3.1 for *candidate*."""
    candidate = tuple(candidate)
    if len(candidate) != query.arity:
        return False
    domain = set(probe_domain(query))
    if any(term not in domain for term in candidate):
        return False
    try:
        unify_tuples(query.head, candidate)
    except UnificationError:
        return False
    return True


def _repeated_position_groups(query: ConjunctiveQuery) -> tuple[tuple[int, ...], ...]:
    """Head positions sharing a variable (only groups of size ≥ 2 constrain)."""
    positions: dict[Term, list[int]] = {}
    for position, variable in enumerate(query.head):
        positions.setdefault(variable, []).append(position)
    return tuple(tuple(group) for group in positions.values() if len(group) > 1)


def iter_probe_tuples(query: ConjunctiveQuery) -> Iterator[tuple[Term, ...]]:
    """Enumerate every probe tuple of *query* (Definition 3.1), lazily.

    The number of probe tuples is ``|adom(I_q)|^arity`` before the
    unifiability filter, so this enumeration is exponential in the arity of
    the query; the main decision path never needs it (Theorem 5.3).  The
    unifiability condition is checked structurally — a candidate passes iff
    every group of head positions sharing a variable carries one value — so
    the inner loop of the all-probes sweep is exception-free.
    """
    domain = probe_domain(query)
    groups = _repeated_position_groups(query)
    for candidate in product(domain, repeat=query.arity):
        if all(
            all(candidate[position] == candidate[group[0]] for position in group[1:])
            for group in groups
        ):
            yield candidate


def probe_tuples(query: ConjunctiveQuery) -> tuple[tuple[Term, ...], ...]:
    """All probe tuples of *query*, materialised in a deterministic order."""
    return tuple(iter_probe_tuples(query))


def canonical_probe_representative(probe: Sequence[Term]) -> tuple[Term, ...]:
    """The representative of *probe* modulo renaming of canonical constants.

    Two probe tuples are isomorphic (in the sense sketched after
    Definition 3.1) when one is obtained from the other by a bijection that
    fixes the language constants and permutes the canonical constants.  The
    representative renames the canonical constants occurring in the tuple,
    in order of first appearance, to the fixed names ``#1, #2, ...`` —
    isomorphic tuples share a representative.
    """
    renaming: dict[CanonicalConstant, CanonicalConstant] = {}
    representative: list[Term] = []
    for term in probe:
        if isinstance(term, CanonicalConstant):
            if term not in renaming:
                renaming[term] = CanonicalConstant(f"#{len(renaming) + 1}")
            representative.append(renaming[term])
        else:
            representative.append(term)
    return tuple(representative)


def reduced_probe_tuples(query: ConjunctiveQuery) -> tuple[tuple[Term, ...], ...]:
    """One probe tuple per isomorphism class (canonical-constant renamings).

    For the example of Section 3 this turns the 16 probe tuples of
    ``q(x1, x2) ← R(x1, x2), R(c1, x2), R(x1, c2)`` into 10 representatives.
    """
    chosen: dict[tuple[Term, ...], tuple[Term, ...]] = {}
    for probe in iter_probe_tuples(query):
        key = canonical_probe_representative(probe)
        if key not in chosen:
            chosen[key] = probe
    return tuple(chosen.values())
