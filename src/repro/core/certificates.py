"""Counterexample certificates for failed bag containments.

When ``q1 ⋢b q2`` the decision procedure does not merely answer "no": it
produces a :class:`ContainmentCounterexample` — a concrete bag instance
``µ`` over the canonical instance ``I_{q1(t)}`` and the answer tuple ``t``
on which the containment breaks, i.e. ``q1^µ(t) > q2^µ(t)``.  The
certificate stores the multiplicities *predicted* by the Diophantine
encoding and :meth:`ContainmentCounterexample.verify` recomputes both
multiplicities from scratch with the bag-evaluation engine, so every
negative answer of the library is independently checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.encoding import MpiEncoding
from repro.evaluation.bag_evaluation import bag_multiplicity
from repro.exceptions import CertificateError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.instances import BagInstance
from repro.relational.terms import Term

__all__ = ["ContainmentCounterexample", "counterexample_from_witness", "uniform_counterexample"]


@dataclass(frozen=True)
class ContainmentCounterexample:
    """A certified witness that bag containment fails.

    Attributes
    ----------
    probe:
        The answer tuple ``t`` whose multiplicity breaks the containment.
    bag:
        The bag instance ``µ`` over the canonical instance ``I_{q1(t)}``.
    containee_multiplicity / containing_multiplicity:
        The predicted multiplicities ``q1^µ(t)`` and ``q2^µ(t)``.
    """

    probe: tuple[Term, ...]
    bag: BagInstance
    containee_multiplicity: int
    containing_multiplicity: int

    def margin(self) -> int:
        """By how much the containee exceeds the containing query on this bag."""
        return self.containee_multiplicity - self.containing_multiplicity

    def verify(self, containee: ConjunctiveQuery, containing: ConjunctiveQuery) -> bool:
        """Recompute both multiplicities with the evaluation engine and compare.

        Returns ``True`` when the recomputed values match the stored ones and
        indeed witness a violation; raises :class:`CertificateError` when the
        stored values do not match the recomputation (which would indicate a
        bug in the encoding), and returns ``False`` when the bag is simply
        not a counterexample.
        """
        left = bag_multiplicity(containee, self.bag, self.probe)
        right = bag_multiplicity(containing, self.bag, self.probe)
        if left != self.containee_multiplicity or right != self.containing_multiplicity:
            raise CertificateError(
                "certificate multiplicities do not match a direct evaluation: "
                f"stored ({self.containee_multiplicity}, {self.containing_multiplicity}), "
                f"recomputed ({left}, {right})"
            )
        return left > right

    def describe(self) -> str:
        """Human-readable rendering of the counterexample."""
        facts = ", ".join(f"{fact}^{count}" for fact, count in self.bag.items())
        answer = ", ".join(str(term) for term in self.probe)
        return (
            f"on the bag {{{facts}}} the answer ({answer}) has multiplicity "
            f"{self.containee_multiplicity} in the containee but only "
            f"{self.containing_multiplicity} in the containing query"
        )


def counterexample_from_witness(
    encoding: MpiEncoding, witness: Sequence[int]
) -> ContainmentCounterexample:
    """Turn a Diophantine solution ``ξ`` of the encoded MPI into a counterexample bag.

    The bag assigns multiplicity ``ξ_i`` to the i-th atom of
    ``body(q1(t))``; by construction ``q1^µ(t) = M(ξ)`` and
    ``q2^µ(t) = P(ξ)``, and ``P(ξ) < M(ξ)`` because ``ξ`` solves the MPI.
    """
    values = tuple(int(component) for component in witness)
    if len(values) != encoding.dimension:
        raise CertificateError(
            f"witness of size {len(values)} for an encoding with {encoding.dimension} unknowns"
        )
    if any(component < 0 for component in values):
        raise CertificateError(f"witness components must be natural numbers, got {values}")

    bag = BagInstance({atom: value for atom, value in zip(encoding.atoms, values)})
    containee_multiplicity = int(encoding.monomial.evaluate(values))
    containing_multiplicity = int(encoding.polynomial.evaluate(values))
    if containee_multiplicity <= containing_multiplicity:
        raise CertificateError(
            f"witness {values} does not solve the encoded inequality "
            f"({containee_multiplicity} <= {containing_multiplicity})"
        )
    return ContainmentCounterexample(
        probe=encoding.probe,
        bag=bag,
        containee_multiplicity=containee_multiplicity,
        containing_multiplicity=containing_multiplicity,
    )


def uniform_counterexample(encoding: MpiEncoding) -> ContainmentCounterexample:
    """The all-ones counterexample, used when the probe tuple does not unify.

    When the probe tuple is not unifiable with the head of the containing
    query the containing query cannot produce the answer ``t`` at all, so
    the bag assigning multiplicity 1 to every atom of ``I_{q1(t)}`` already
    breaks the containment: ``q1^µ(t) = 1 > 0 = q2^µ(t)``.
    """
    return counterexample_from_witness(encoding, (1,) * encoding.dimension)
