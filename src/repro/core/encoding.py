"""Encoding a bag-containment instance as a monomial–polynomial inequality.

Definitions 3.2 and 3.3 of the paper associate

* the projection-free containee ``q1(x1)``, grounded on a probe tuple ``t``,
  with the monomial ``M_{q1(t)}(u)`` whose exponents are the body
  multiplicities of ``q1(t)``;
* the containing query ``q2(x2)`` with the polynomial ``P^{q2}_{q1(t)}(u)``
  obtained by summing, over every containment mapping ``h`` of ``q2`` into
  ``q1(t)``, the monomial of the image query ``h(q2)``.

The unknown ``u_i`` stands for the (unknown) multiplicity of the i-th atom
of ``body(q1(t))`` in a bag over the canonical instance ``I_{q1(t)}``.
Corollary 3.1 / Theorem 5.3 then reduce containment to the unsolvability of
the inequality ``P < M``.

:class:`MpiEncoding` bundles everything a caller could want to inspect:
the grounded containee, the ordered atom/unknown correspondence, both sides
of the inequality, the containment mappings that generated the polynomial,
and whether the probe tuple is unifiable with the head of the containing
query (condition (1) of Theorem 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.probe_tuples import most_general_probe_tuple
from repro.diophantine.inequalities import MonomialPolynomialInequality
from repro.diophantine.monomials import Monomial
from repro.diophantine.polynomials import Polynomial
from repro.engine import ContainmentMappingBatcher
from repro.exceptions import ContainmentError, UnificationError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.substitutions import Substitution, unify_tuples
from repro.relational.terms import Term

__all__ = [
    "MpiEncoding",
    "encode",
    "encode_many",
    "encode_most_general",
    "unknown_name_for_atom",
]


def unknown_name_for_atom(atom: Atom, index: int) -> str:
    """A readable unknown name ``u<i>[R(a,b)]`` for the i-th atom."""
    return f"u{index + 1}[{atom}]"


@dataclass(frozen=True)
class MpiEncoding:
    """The full Diophantine encoding of one (containee, containing, probe) triple."""

    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    probe: tuple[Term, ...]
    grounded_containee: ConjunctiveQuery
    atoms: tuple[Atom, ...]
    unknown_names: tuple[str, ...]
    monomial: Monomial
    polynomial: Polynomial
    inequality: MonomialPolynomialInequality
    mappings: tuple[Substitution, ...]
    probe_unifiable_with_containing: bool

    @property
    def dimension(self) -> int:
        """Number of unknowns (= distinct atoms of the grounded containee)."""
        return len(self.atoms)

    @property
    def num_mappings(self) -> int:
        """Number of containment mappings from the containing query into ``q1(t)``."""
        return len(self.mappings)

    def atom_index(self, atom: Atom) -> int:
        """Position of *atom* in the unknown order; raises ``ValueError`` if absent."""
        return self.atoms.index(atom)

    def describe(self) -> str:
        """A multi-line, human-readable description of the encoding."""
        lines = [
            f"containee : {self.containee}",
            f"containing: {self.containing}",
            f"probe     : ({', '.join(str(term) for term in self.probe)})",
            f"grounded  : {self.grounded_containee}",
            "unknowns  :",
        ]
        for name, atom in zip(self.unknown_names, self.atoms):
            lines.append(f"    {name} ~ multiplicity of {atom}")
        lines.append(f"monomial  M = {self.monomial.render(self.unknown_names)}")
        lines.append(f"polynomial P = {self.polynomial.render(self.unknown_names)}")
        lines.append(f"containment mappings: {self.num_mappings}")
        lines.append(
            "probe unifiable with containing head: "
            + ("yes" if self.probe_unifiable_with_containing else "no")
        )
        return "\n".join(lines)


def _image_exponents(
    image: ConjunctiveQuery, atoms: Sequence[Atom], containing: ConjunctiveQuery
) -> tuple[int, ...]:
    """Exponent vector of the monomial of an image query ``h(q2)``."""
    positions = {atom: index for index, atom in enumerate(atoms)}
    exponents = [0] * len(atoms)
    for atom, multiplicity in image.body.items():
        position = positions.get(atom)
        if position is None:
            raise ContainmentError(
                f"internal error: image atom {atom} of {containing.name} is not part of the "
                "grounded containee body"
            )
        exponents[position] = multiplicity
    return tuple(exponents)


def _encode_at_probe(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    probe_tuple: tuple[Term, ...],
    batcher: ContainmentMappingBatcher,
) -> MpiEncoding:
    """The per-probe encoding body shared by :func:`encode` and :func:`encode_many`."""
    grounded = containee.ground(probe_tuple, name=f"{containee.name}(t)")
    atoms = grounded.body_atoms()
    unknown_names = tuple(unknown_name_for_atom(atom, index) for index, atom in enumerate(atoms))

    monomial = Monomial(1, tuple(grounded.body[atom] for atom in atoms))

    try:
        unify_tuples(containing.head, probe_tuple)
        unifiable = True
    except UnificationError:
        unifiable = False

    mappings: tuple[Substitution, ...] = ()
    image_monomials: list[Monomial] = []
    if unifiable:
        mappings = batcher.mappings(grounded, probe_tuple)
        for mapping in mappings:
            image = containing.apply_substitution(mapping)
            image_monomials.append(Monomial(1, _image_exponents(image, atoms, containing)))

    polynomial = Polynomial(image_monomials, dimension=len(atoms))
    inequality = MonomialPolynomialInequality(polynomial, monomial)

    return MpiEncoding(
        containee=containee,
        containing=containing,
        probe=probe_tuple,
        grounded_containee=grounded,
        atoms=atoms,
        unknown_names=unknown_names,
        monomial=monomial,
        polynomial=polynomial,
        inequality=inequality,
        mappings=mappings,
        probe_unifiable_with_containing=unifiable,
    )


def encode(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    probe: Sequence[Term],
) -> MpiEncoding:
    """Build the MPI encoding of ``containee ⊑b containing`` at the probe tuple *probe*.

    The containee must be projection-free (the monomial of Definition 3.2
    only exists because the grounding homomorphism is unique in that case).
    """
    containee.require_projection_free()
    return _encode_at_probe(
        containee, containing, tuple(probe), ContainmentMappingBatcher(containing)
    )


def encode_many(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    probes: Iterable[Sequence[Term]],
) -> Iterator[MpiEncoding]:
    """Encode one MPI per probe tuple, sharing one compiled containing-side plan.

    The containing query's join order is compiled once (through the engine's
    :class:`~repro.engine.batch.ContainmentMappingBatcher`) and re-targeted at
    each grounded containee, which is what makes the all-probes and
    bounded-guess strategies scale past a handful of probe tuples.  Lazy: a
    caller that stops at the first refuting probe never pays for the rest
    (the projection-freeness check still fails eagerly, at the call site).
    """
    containee.require_projection_free()
    batcher = ContainmentMappingBatcher(containing)

    def generate() -> Iterator[MpiEncoding]:
        for probe in probes:
            yield _encode_at_probe(containee, containing, tuple(probe), batcher)

    return generate()


def encode_most_general(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery
) -> MpiEncoding:
    """The encoding at the most-general probe tuple ``t⋆`` (Theorem 5.3)."""
    return encode(containee, containing, most_general_probe_tuple(containee))
