"""The paper's primary contribution: deciding bag containment of a
projection-free CQ into a generic CQ via monomial-polynomial inequalities."""

from repro.core.certificates import (
    ContainmentCounterexample,
    counterexample_from_witness,
    uniform_counterexample,
)
from repro.core.decision import (
    STRATEGIES,
    BagContainmentResult,
    are_bag_equivalent,
    decide_bag_containment,
    decide_via_all_probes,
    decide_via_bounded_guess,
    decide_via_most_general_probe,
    is_bag_contained,
)
from repro.core.encoding import MpiEncoding, encode, encode_many, encode_most_general
from repro.core.probe_tuples import (
    canonical_probe_representative,
    is_probe_tuple,
    iter_probe_tuples,
    most_general_probe_tuple,
    probe_domain,
    probe_tuples,
    reduced_probe_tuples,
)
from repro.core.reductions import (
    bag_for_polynomial_point,
    graph_query,
    polynomial_pair_to_ucqs,
    polynomial_to_ucq,
    three_colorability_instance,
    triangle_query,
)
from repro.core.spectrum import ContainmentSpectrum, Relationship, compare

__all__ = [
    "BagContainmentResult",
    "ContainmentCounterexample",
    "ContainmentSpectrum",
    "MpiEncoding",
    "Relationship",
    "STRATEGIES",
    "compare",
    "are_bag_equivalent",
    "bag_for_polynomial_point",
    "canonical_probe_representative",
    "counterexample_from_witness",
    "decide_bag_containment",
    "decide_via_all_probes",
    "decide_via_bounded_guess",
    "decide_via_most_general_probe",
    "encode",
    "encode_many",
    "encode_most_general",
    "graph_query",
    "is_bag_contained",
    "is_probe_tuple",
    "iter_probe_tuples",
    "most_general_probe_tuple",
    "polynomial_pair_to_ucqs",
    "polynomial_to_ucq",
    "probe_domain",
    "probe_tuples",
    "reduced_probe_tuples",
    "three_colorability_instance",
    "triangle_query",
    "uniform_counterexample",
]
