"""Differential fuzzing & metamorphic verification (the ``repro fuzz`` engine).

The subsystem turns the library's redundancy — three decision strategies,
three engine backends, two Diophantine feasibility paths, the refuter
baselines and the cross-semantics implications — into an always-on
correctness harness:

* :mod:`repro.verify.oracles` — differential oracles that run one pair
  through every combination, replay every counterexample certificate, and
  report disagreements as structured :class:`Discrepancy` records;
* :mod:`repro.verify.metamorphic` — semantics-preserving and
  semantics-known pair mutations with provable verdict-transfer rules;
* :mod:`repro.verify.shrink` — a delta-debugging shrinker that minimizes a
  failing pair while the discrepancy persists;
* :mod:`repro.verify.corpus` — seeded JSON corpora for deterministic
  regression replay;
* :mod:`repro.verify.runner` — the parallel campaign runner behind the
  ``repro fuzz`` CLI subcommand.
"""

from repro.verify.corpus import (
    BUILTIN_PAIR_TEXTS,
    CorpusEntry,
    builtin_pairs,
    load_corpus,
    replay_corpus,
    save_corpus,
)
from repro.verify.metamorphic import (
    MUTATIONS,
    MetamorphicMutation,
    expected_verdict,
    mutation_by_name,
)
from repro.verify.oracles import (
    DIOPHANTINE_PATHS,
    Discrepancy,
    OracleConfig,
    OracleReport,
    StrategyRun,
    run_differential_oracle,
)
from repro.verify.runner import (
    CampaignConfig,
    CampaignFailure,
    CampaignReport,
    CaseResult,
    FuzzCase,
    campaign_corpus,
    generate_case,
    run_campaign,
    run_case,
)
from repro.verify.shrink import ShrinkResult, shrink_pair

__all__ = [
    "BUILTIN_PAIR_TEXTS",
    "CampaignConfig",
    "CampaignFailure",
    "CampaignReport",
    "CaseResult",
    "CorpusEntry",
    "DIOPHANTINE_PATHS",
    "Discrepancy",
    "FuzzCase",
    "MUTATIONS",
    "MetamorphicMutation",
    "OracleConfig",
    "OracleReport",
    "ShrinkResult",
    "StrategyRun",
    "builtin_pairs",
    "campaign_corpus",
    "expected_verdict",
    "generate_case",
    "load_corpus",
    "mutation_by_name",
    "replay_corpus",
    "run_campaign",
    "run_case",
    "run_differential_oracle",
    "save_corpus",
    "shrink_pair",
]
