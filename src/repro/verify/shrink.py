"""A minimizing shrinker for failing (containee, containing) pairs.

When a differential oracle flags a pair, the raw reproducer is usually
noisy: spare atoms, incidental multiplicities, variables that play no role
in the disagreement.  :func:`shrink_pair` is a greedy delta-debugging loop
over structure-shrinking moves, each of which keeps the pair well-formed
(containee projection-free, matching head arities, safe queries):

1. **drop a containing atom** (when safety allows);
2. **drop a containee atom**, removing orphaned variables from *both*
   heads position-wise so the containee stays projection-free;
3. **lower a multiplicity** by one (towards 1) on either side;
4. **merge two variables** (one substitution applied to both queries);
5. **merge two containing-only existential variables**.

A candidate is accepted when the caller's *predicate* still holds (e.g.
"the oracle still reports a discrepancy of the same kind"); the loop
restarts from the first move after every acceptance and stops at a
fixpoint, a round cap or a check budget.  The predicate is treated as
untrusted: any exception it raises counts as "does not reproduce".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterator

from repro.queries.cq import ConjunctiveQuery
from repro.relational.substitutions import Substitution
from repro.relational.terms import Variable

__all__ = ["ShrinkResult", "shrink_pair"]

Pair = tuple[ConjunctiveQuery, ConjunctiveQuery]
Predicate = Callable[[ConjunctiveQuery, ConjunctiveQuery], bool]


@dataclass(frozen=True)
class ShrinkResult:
    """The minimized pair plus bookkeeping about the shrink run."""

    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    rounds: int
    checks: int
    original_size: tuple[int, int]

    @property
    def size(self) -> tuple[int, int]:
        """(containee atoms, containing atoms) after shrinking."""
        return (len(self.containee.body_atoms()), len(self.containing.body_atoms()))

    def describe(self) -> str:
        return (
            f"shrunk ({self.original_size[0]}, {self.original_size[1]}) -> {self.size} atoms "
            f"in {self.rounds} rounds / {self.checks} checks:\n"
            f"  {self.containee}\n  {self.containing}"
        )


def _safe_query(
    head: tuple[Variable, ...], body: dict, name: str
) -> ConjunctiveQuery | None:
    """Build a query, or ``None`` when the candidate is ill-formed."""
    try:
        return ConjunctiveQuery(head, body, name=name)
    except Exception:  # noqa: BLE001 - an ill-formed candidate is just skipped
        return None


def _drop_containing_atoms(containee: ConjunctiveQuery, containing: ConjunctiveQuery) -> Iterator[Pair]:
    body = containing.body
    if len(body) < 2:
        return
    for atom in containing.body_atoms():
        remaining = {other: count for other, count in body.items() if other != atom}
        candidate = _safe_query(containing.head, remaining, containing.name)
        if candidate is not None:
            yield containee, candidate


def _drop_containee_atoms(containee: ConjunctiveQuery, containing: ConjunctiveQuery) -> Iterator[Pair]:
    body = containee.body
    if len(body) < 2 or len(containing.head) != len(containee.head):
        return
    for atom in containee.body_atoms():
        remaining = {other: count for other, count in body.items() if other != atom}
        surviving = {variable for other in remaining for variable in other.variables()}
        # Drop orphaned head positions from both heads so arities stay equal
        # and the containee stays projection-free.
        keep = [index for index, variable in enumerate(containee.head) if variable in surviving]
        new_containee = _safe_query(
            tuple(containee.head[index] for index in keep), remaining, containee.name
        )
        new_containing = _safe_query(
            tuple(containing.head[index] for index in keep), containing.body, containing.name
        )
        if new_containee is not None and new_containing is not None:
            yield new_containee, new_containing


def _lower_multiplicities(containee: ConjunctiveQuery, containing: ConjunctiveQuery) -> Iterator[Pair]:
    for query, other, containee_side in (
        (containee, containing, True),
        (containing, containee, False),
    ):
        for atom, multiplicity in query.body.items():
            if multiplicity <= 1:
                continue
            lowered = dict(query.body)
            lowered[atom] = multiplicity - 1
            candidate = _safe_query(query.head, lowered, query.name)
            if candidate is None:
                continue
            yield (candidate, other) if containee_side else (other, candidate)


def _merge_variables(containee: ConjunctiveQuery, containing: ConjunctiveQuery) -> Iterator[Pair]:
    variables = sorted(containee.variables(), key=str)
    for keep, drop in combinations(variables, 2):
        substitution = Substitution({drop: keep})
        try:
            yield (
                containee.apply_substitution(substitution, name=containee.name),
                containing.apply_substitution(substitution, name=containing.name),
            )
        except Exception:  # noqa: BLE001
            continue


def _merge_containing_existentials(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery
) -> Iterator[Pair]:
    existentials = sorted(containing.existential_variables(), key=str)
    for keep, drop in combinations(existentials, 2):
        substitution = Substitution({drop: keep})
        try:
            yield containee, containing.apply_substitution(substitution, name=containing.name)
        except Exception:  # noqa: BLE001
            continue


#: Shrinking moves, biggest structural wins first.
_MOVES = (
    _drop_containing_atoms,
    _drop_containee_atoms,
    _merge_containing_existentials,
    _merge_variables,
    _lower_multiplicities,
)


def shrink_pair(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    predicate: Predicate,
    max_rounds: int = 200,
    max_checks: int = 2_000,
) -> ShrinkResult:
    """Greedily minimize a pair while *predicate* keeps holding.

    The input pair is assumed to satisfy the predicate (callers normally
    shrink a pair the oracle just flagged); if it does not, the input is
    returned unchanged with zero rounds.
    """
    original_size = (len(containee.body_atoms()), len(containing.body_atoms()))
    checks = 0

    def holds(candidate_containee: ConjunctiveQuery, candidate_containing: ConjunctiveQuery) -> bool:
        nonlocal checks
        checks += 1
        try:
            return bool(predicate(candidate_containee, candidate_containing))
        except Exception:  # noqa: BLE001 - a crashing predicate means "not reproduced"
            return False

    if not holds(containee, containing):
        return ShrinkResult(containee, containing, 0, checks, original_size)

    rounds = 0
    while rounds < max_rounds and checks < max_checks:
        rounds += 1
        for move in _MOVES:
            accepted = False
            for candidate in move(containee, containing):
                if checks >= max_checks:
                    break
                if candidate == (containee, containing):
                    continue
                if holds(*candidate):
                    containee, containing = candidate
                    accepted = True
                    break
            if accepted:
                break
        else:
            break  # fixpoint: no move produced an accepted candidate

    return ShrinkResult(containee, containing, rounds, checks, original_size)
