"""The parallel fuzz-campaign runner behind ``repro fuzz``.

A *campaign* draws ``cases`` seeded (containee, containing) pairs from the
workload generators (adversarial boundary pairs, containment-biased and
unrelated random pairs, structured chain/star families, and the built-in
hand-written corpus), optionally applies one metamorphic mutation per case,
and pushes everything through the differential oracle.  Each case derives
its own RNG stream from ``(campaign seed, case index)``, so any case
reproduces in isolation no matter how the work was sharded.

Execution is either inline (``jobs <= 1``) or sharded across the worker
pool harness of :mod:`repro.parallel` (the same one ``Session.batch``
uses): the case indices are chunked, each worker rehydrates the driving
session from its :class:`~repro.session.SessionSpec` (fresh cache, same
backend and limits) and reports its results together with the snapshot
delta of its cache, and the campaign report aggregates the fleet-wide
cache statistics through :func:`repro.engine.merge_snapshots`.  Because
every case derives its RNG streams from ``(campaign seed, case index)``
alone, the generated corpus is byte-identical no matter how many jobs ran
it or which worker drew which chunk.  Both time and case budgets are
enforced between chunks; exhausting the time budget closes the result
iterator, which terminates and joins the pool.

Failures are shrunk in the parent process with the delta-debugging shrinker
(the predicate re-runs the oracle and asks for a discrepancy of the same
kind), and the whole campaign can be persisted as a replayable corpus via
:func:`campaign_corpus`.
"""

from __future__ import annotations

import dataclasses
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.analysis import hooks as _verify_hooks
from repro.core.decision import STRATEGIES
from repro.engine import (
    BACKEND_NAMES,
    default_cache,
    describe_snapshot,
    merge_snapshots,
    snapshot_delta,
)
from repro.exceptions import VerifyError
from repro.parallel import pool_imap
from repro.queries.cq import ConjunctiveQuery
from repro.verify.corpus import CorpusEntry, builtin_pairs
from repro.verify.metamorphic import MUTATIONS, expected_verdict, mutation_by_name
from repro.verify.oracles import (
    DIOPHANTINE_PATHS,
    Discrepancy,
    OracleConfig,
    run_differential_oracle,
)
from repro.verify.shrink import ShrinkResult, shrink_pair
from repro.workloads.random_queries import (
    random_adversarial_pair,
    random_containment_pair,
    random_unrelated_pair,
)
from repro.workloads.structured import chain_containment_pair, star_containment_pair

__all__ = [
    "CampaignConfig",
    "CampaignFailure",
    "CampaignReport",
    "CaseResult",
    "FuzzCase",
    "campaign_corpus",
    "generate_case",
    "run_campaign",
    "run_case",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Shape, budget and sharding of one fuzz campaign."""

    cases: int = 200
    seed: int = 0
    jobs: int = 1
    strategies: tuple[str, ...] = STRATEGIES
    backends: tuple[str, ...] = BACKEND_NAMES
    diophantine_paths: tuple[str, ...] = DIOPHANTINE_PATHS
    mutation_rate: float = 0.5
    shrink_failures: bool = True
    time_budget: float | None = None
    chunk_size: int = 25
    num_atoms: int = 3
    head_size: int = 2
    #: Verify every compiled plan and generated function online during the
    #: campaign (see :mod:`repro.analysis`); the per-chunk verification
    #: counts ride the snapshot under the ``verify`` pseudo-layer.
    debug_verify_plans: bool = False
    #: Per-case wall-clock budget in milliseconds.  A case that exhausts it
    #: is recorded as an honest degraded result (``degraded="deadline"``,
    #: no consensus) instead of stalling the campaign on one pathological
    #: pair; ``None`` disables the per-case deadline.
    deadline_ms: int | None = None

    def __post_init__(self) -> None:
        if self.cases < 0:
            raise VerifyError("a campaign needs a non-negative case budget")
        if self.jobs < 1:
            raise VerifyError("jobs must be at least 1")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise VerifyError("mutation_rate must lie in [0, 1]")
        if self.time_budget is not None and self.time_budget <= 0:
            raise VerifyError("the time budget must be positive")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise VerifyError("deadline_ms must be positive when set")
        self.oracle_config()  # validate strategies / backends / paths eagerly

    def oracle_config(self) -> OracleConfig:
        return OracleConfig(
            strategies=self.strategies,
            backends=self.backends,
            diophantine_paths=self.diophantine_paths,
        )


@dataclass(frozen=True)
class FuzzCase:
    """One generated case: a pair, its provenance, and an optional mutation."""

    index: int
    origin: str
    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    mutation: str | None = None


@dataclass(frozen=True)
class CampaignFailure:
    """One flagged pair, optionally minimized by the shrinker.

    ``expected`` carries the verdict the pair *should* have (for mutant
    pairs, the transfer-rule prediction), so a corpus replay can flag
    verdict drift on the failing pair itself.
    """

    case_id: str
    origin: str
    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    discrepancies: tuple[Discrepancy, ...]
    expected: bool | None = None
    shrunk: ShrinkResult | None = None

    def describe(self) -> str:
        lines = [f"case {self.case_id} ({self.origin}):"]
        lines.extend(f"  {discrepancy.describe()}" for discrepancy in self.discrepancies)
        lines.append(f"  containee:  {self.containee}")
        lines.append(f"  containing: {self.containing}")
        if self.shrunk is not None:
            lines.append("  " + self.shrunk.describe().replace("\n", "\n  "))
        return "\n".join(lines)


@dataclass(frozen=True)
class CaseResult:
    """The outcome of one case, light enough to ship across processes."""

    index: int
    origin: str
    consensus: bool | None
    decisions: int
    skipped_runs: int
    mutation_checked: str | None
    failures: tuple[CampaignFailure, ...] = ()
    #: ``"deadline"`` when the case exhausted ``CampaignConfig.deadline_ms``
    #: — no consensus was established, honestly reported, never guessed.
    degraded: str | None = None


#: Weighted generator palette: (name, weight).  Adversarial boundary pairs
#: dominate because they are where the decision procedures have least slack.
_GENERATORS: tuple[tuple[str, float], ...] = (
    ("adversarial", 0.30),
    ("containment", 0.25),
    ("unrelated", 0.20),
    ("builtin", 0.10),
    ("chain", 0.08),
    ("star", 0.07),
)


def _case_rng(seed: int, index: int, stream: str) -> random.Random:
    """A per-case RNG stream, stable across run shapes and worker shardings."""
    return random.Random(f"{seed}:{index}:{stream}")


def generate_case(config: CampaignConfig, index: int) -> FuzzCase:
    """Deterministically draw case *index* of the campaign."""
    rng = _case_rng(config.seed, index, "gen")
    choice = rng.random()
    cumulative = 0.0
    name = _GENERATORS[-1][0]
    for generator_name, weight in _GENERATORS:
        cumulative += weight
        if choice < cumulative:
            name = generator_name
            break

    pair_seed = rng.randrange(2**30)
    if name == "adversarial":
        containee, containing = random_adversarial_pair(
            pair_seed, num_atoms=config.num_atoms, head_size=config.head_size
        )
        origin = f"adversarial[{pair_seed}]"
    elif name == "containment":
        containee, containing = random_containment_pair(
            pair_seed, num_atoms=config.num_atoms, head_size=config.head_size
        )
        origin = f"containment[{pair_seed}]"
    elif name == "unrelated":
        containee, containing = random_unrelated_pair(
            pair_seed, num_atoms=config.num_atoms, head_size=config.head_size
        )
        origin = f"unrelated[{pair_seed}]"
    elif name == "builtin":
        pairs = builtin_pairs()
        pick = rng.randrange(len(pairs))
        containee, containing = pairs[pick]
        origin = f"builtin[{pick}]"
    elif name == "chain":
        length = rng.randint(1, 3)
        containee, containing = chain_containment_pair(length)
        origin = f"chain[{length}]"
    else:
        rays = rng.randint(1, 2)
        containee, containing = star_containment_pair(rays)
        origin = f"star[{rays}]"

    mutation: str | None = None
    if rng.random() < config.mutation_rate:
        mutation = rng.choice(MUTATIONS).name
    return FuzzCase(index, origin, containee, containing, mutation=mutation)


def _run_case_with_deadline(config: CampaignConfig, index: int) -> CaseResult:
    """Run case *index* under the campaign's per-case deadline, if any.

    The engine driver loops poll the ambient deadline
    (:func:`repro.faults.runtime.deadline_scope`) and raise
    :class:`~repro.exceptions.DeadlineExceeded` mid-plan; the campaign
    converts that into an honest degraded result rather than a verdict.
    """
    from repro.exceptions import DeadlineExceeded
    from repro.faults.runtime import deadline_scope

    case = generate_case(config, index)
    try:
        with deadline_scope(config.deadline_ms):
            return run_case(case, config)
    except DeadlineExceeded:
        return CaseResult(
            index=case.index,
            origin=case.origin,
            consensus=None,
            decisions=0,
            skipped_runs=0,
            mutation_checked=None,
            degraded="deadline",
        )


def run_case(case: FuzzCase, config: CampaignConfig) -> CaseResult:
    """Run one case through the oracle (and its metamorphic check, if drawn)."""
    oracle_config = config.oracle_config()
    failures: list[CampaignFailure] = []

    report = run_differential_oracle(case.containee, case.containing, oracle_config)
    decisions = report.decisions
    skipped = sum(1 for run in report.runs if run.skipped is not None)
    if not report.ok:
        failures.append(
            CampaignFailure(
                case_id=f"case-{case.index}",
                origin=case.origin,
                containee=case.containee,
                containing=case.containing,
                discrepancies=report.discrepancies,
            )
        )

    mutation_checked: str | None = None
    if case.mutation is not None and report.consensus is not None:
        mutation = mutation_by_name(case.mutation)
        mutated = mutation.apply(
            case.containee, case.containing, _case_rng(config.seed, case.index, "mut")
        )
        if mutated is not None:
            mutation_checked = mutation.name
            mutant_containee, mutant_containing = mutated
            mutant_report = run_differential_oracle(
                mutant_containee, mutant_containing, oracle_config
            )
            decisions += mutant_report.decisions
            skipped += sum(1 for run in mutant_report.runs if run.skipped is not None)
            mutant_discrepancies = list(mutant_report.discrepancies)
            expected = expected_verdict(mutation.rule, report.consensus)
            if (
                expected is not None
                and mutant_report.consensus is not None
                and mutant_report.consensus != expected
            ):
                mutant_discrepancies.append(
                    Discrepancy(
                        "metamorphic",
                        f"mutation {mutation.name} ({mutation.rule}) requires the mutant verdict "
                        f"to be {'contained' if expected else 'not contained'}, got "
                        f"{'contained' if mutant_report.consensus else 'not contained'}",
                    )
                )
            if mutant_discrepancies:
                failures.append(
                    CampaignFailure(
                        case_id=f"case-{case.index}+{mutation.name}",
                        origin=f"{case.origin}+{mutation.name}",
                        containee=mutant_containee,
                        containing=mutant_containing,
                        discrepancies=tuple(mutant_discrepancies),
                        expected=expected,
                    )
                )

    return CaseResult(
        index=case.index,
        origin=case.origin,
        consensus=report.consensus,
        decisions=decisions,
        skipped_runs=skipped,
        mutation_checked=mutation_checked,
        failures=tuple(failures),
    )


def _persist_counts() -> tuple[int, int, int] | None:
    """The active session's persistent-tier ``(hits, misses, stores)``, if any."""
    from repro.session.session import current_session

    session = current_session()
    persistent = session.persistent if session is not None else None
    if persistent is None:
        return None
    return (persistent.stats.hits, persistent.stats.misses, persistent.stats.stores)


def _run_chunk(payload: tuple[CampaignConfig, tuple[int, ...]]) -> tuple[
    list[CaseResult], dict[str, tuple[int, int, int]]
]:
    """Pool worker: run a chunk of case indices, report the cache delta.

    When the driving session has a persistent tier, its ``(hits, misses,
    stores)`` delta rides along in the snapshot under the ``persist``
    pseudo-layer, so the campaign report can aggregate warm-start traffic
    fleet-wide just like the in-memory layers.
    """
    if _WORKER_INIT_ERROR is not None:
        raise VerifyError(
            f"campaign worker failed to rehydrate its session: {_WORKER_INIT_ERROR}"
        )
    config, indices = payload
    persist_before = _persist_counts()
    verify_before = (
        _verify_hooks.verification_counts() if config.debug_verify_plans else None
    )
    before = default_cache().snapshot()
    if config.debug_verify_plans:
        with _verify_hooks.debug_verify_plans():
            results = [_run_case_with_deadline(config, index) for index in indices]
    else:
        results = [_run_case_with_deadline(config, index) for index in indices]
    snapshot = snapshot_delta(default_cache().snapshot(), before)
    persist_after = _persist_counts()
    if persist_before is not None and persist_after is not None:
        snapshot = dict(snapshot)
        snapshot["persist"] = tuple(
            after - prior for after, prior in zip(persist_after, persist_before)
        )
    if verify_before is not None:
        snapshot = dict(snapshot)
        snapshot["verify"] = tuple(
            after - prior
            for after, prior in zip(_verify_hooks.verification_counts(), verify_before)
        )
    return results, snapshot


#: Keeps the worker's rehydrated session activated for the process lifetime,
#: and any rehydration failure for the first task to report.
_WORKER_SESSION_CONTEXT = None
_WORKER_INIT_ERROR: str | None = None


def _campaign_worker_init(spec) -> None:
    """Pool initializer: rehydrate the driving session in the worker.

    With a :class:`~repro.session.SessionSpec`, the worker builds an
    equivalent session (same backend and limits, fresh cache) and leaves it
    activated, so ``default_cache()`` and backend lookups inside
    :func:`run_case` resolve to the worker session — under both ``fork``
    and ``spawn`` start methods.  Without one the worker keeps the
    context's process-wide defaults, as before.

    Failures are recorded, never raised: an initializer that kills its
    worker would make the pool respawn it in an unbounded loop, hanging
    the campaign instead of failing it.
    """
    global _WORKER_SESSION_CONTEXT, _WORKER_INIT_ERROR
    if spec is None:
        return
    try:
        context = spec.build().activate()
        context.__enter__()
        _WORKER_SESSION_CONTEXT = context  # lint: disable=fork-shared-state -- deliberate per-worker state installed by the campaign initializer inside the worker; the parent never reads it
    except BaseException as error:  # noqa: BLE001 - workers must reach their tasks
        _WORKER_INIT_ERROR = repr(error)  # lint: disable=fork-shared-state -- deliberate per-worker error capture inside the worker; surfaced via campaign results, not the parent module


@dataclass
class CampaignReport:
    """Everything one campaign established, ready for printing or persisting."""

    config: CampaignConfig
    case_results: tuple[CaseResult, ...]
    failures: tuple[CampaignFailure, ...]
    elapsed: float
    engine_stats: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    stopped_early: bool = False

    @property
    def cases_run(self) -> int:
        return len(self.case_results)

    @property
    def decisions(self) -> int:
        return sum(result.decisions for result in self.case_results)

    @property
    def skipped_runs(self) -> int:
        return sum(result.skipped_runs for result in self.case_results)

    @property
    def mutations_checked(self) -> int:
        return sum(1 for result in self.case_results if result.mutation_checked is not None)

    @property
    def degraded_cases(self) -> int:
        return sum(1 for result in self.case_results if result.degraded is not None)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        rate = self.cases_run / self.elapsed if self.elapsed > 0 else float("inf")
        lines = [
            f"fuzz campaign: {self.cases_run}/{self.config.cases} cases "
            f"({self.decisions} decisions, {self.mutations_checked} metamorphic checks, "
            f"{self.skipped_runs} skipped runs) in {self.elapsed:.1f}s "
            f"[{rate:.0f} cases/s, jobs={self.config.jobs}, seed={self.config.seed}]"
        ]
        if self.stopped_early:
            lines.append("time budget exhausted before the case budget")
        contained = sum(1 for result in self.case_results if result.consensus is True)
        refuted = sum(1 for result in self.case_results if result.consensus is False)
        lines.append(f"verdicts: {contained} contained, {refuted} not contained")
        if self.degraded_cases:
            lines.append(
                f"{self.degraded_cases} cases degraded honestly "
                f"(per-case deadline {self.config.deadline_ms}ms)"
            )
        if self.engine_stats:
            stats = dict(self.engine_stats)
            persist = stats.pop("persist", None)
            verify = stats.pop("verify", None)
            lines.append("engine cache (aggregated across workers):")
            lines.extend("  " + line for line in describe_snapshot(stats).splitlines())
            if persist is not None:
                hits, misses, stores = persist
                lookups = hits + misses
                rate = hits / lookups if lookups else 0.0
                lines.append(
                    f"  persist  {hits} hits / {misses} misses ({rate:.0%}), {stores} stored"
                )
            if verify is not None:
                plans, functions, violations = verify
                lines.append(
                    f"  verify   {plans} plans / {functions} generated functions "
                    f"checked, {violations} violations"
                )
        if self.failures:
            lines.append(f"{len(self.failures)} DISCREPANCIES:")
            for failure in self.failures:
                lines.extend("  " + line for line in failure.describe().splitlines())
        else:
            lines.append("no discrepancies found")
        return "\n".join(lines)


def _shrink_failure(
    failure: CampaignFailure, config: CampaignConfig, deadline: float | None = None
) -> CampaignFailure:
    """Minimize a failure whose discrepancy the plain oracle can reproduce.

    *deadline* is a ``time.perf_counter`` timestamp: once it passes, the
    predicate reports "not reproduced" so the shrinker winds down quickly
    and the campaign's time budget bounds the shrink phase too.
    """
    kinds = {discrepancy.kind for discrepancy in failure.discrepancies}
    reproducible = kinds - {"metamorphic", "verdict-drift"}
    if not reproducible:
        return failure
    oracle_config = config.oracle_config()

    def still_failing(containee: ConjunctiveQuery, containing: ConjunctiveQuery) -> bool:
        if deadline is not None and time.perf_counter() > deadline:
            return False
        report = run_differential_oracle(containee, containing, oracle_config)
        return any(discrepancy.kind in reproducible for discrepancy in report.discrepancies)

    shrunk = shrink_pair(failure.containee, failure.containing, still_failing)
    return dataclasses.replace(failure, shrunk=shrunk)


def _chunks(config: CampaignConfig) -> list[tuple[CampaignConfig, tuple[int, ...]]]:
    size = max(1, config.chunk_size)
    return [
        (config, tuple(range(start, min(start + size, config.cases))))
        for start in range(0, config.cases, size)
    ]


def run_campaign(config: CampaignConfig | None = None, session=None) -> CampaignReport:
    """Run one fuzz campaign, inline or across a worker pool.

    With *session* (a :class:`repro.session.Session`), the campaign runs
    with that session active: inline decisions resolve backends through the
    session (sharing its engine cache, which the report's cache statistics
    then reflect), and worker pools rehydrate an equivalent session per
    worker from the session's :meth:`~repro.session.Session.spec`.  Without
    one, the campaign uses the context's current defaults, as before.
    """
    config = config or CampaignConfig()
    context = session.activate() if session is not None else nullcontext()
    spec = session.spec() if session is not None else None
    with context:
        return _run_campaign(config, spec)


def _run_campaign(config: CampaignConfig, spec=None) -> CampaignReport:
    started = time.perf_counter()
    results: list[CaseResult] = []
    snapshots: list[dict[str, tuple[int, int, int]]] = []
    stopped_early = False

    def out_of_time() -> bool:
        return (
            config.time_budget is not None
            and time.perf_counter() - started > config.time_budget
        )

    payloads = _chunks(config)
    if config.jobs <= 1 or len(payloads) <= 1:
        for payload in payloads:
            if out_of_time():
                stopped_early = True
                break
            chunk_results, snapshot = _run_chunk(payload)
            results.extend(chunk_results)
            snapshots.append(snapshot)
    else:
        # The shared pool harness: chunked work stealing, worker failures
        # re-raised in the parent, pool terminated+joined when the result
        # iterator is closed (normally or by the time budget).
        chunk_stream = pool_imap(
            _run_chunk,
            payloads,
            jobs=config.jobs,
            initializer=_campaign_worker_init,
            initargs=(spec,),
            ordered=False,
        )
        try:
            for chunk_results, snapshot in chunk_stream:
                results.extend(chunk_results)
                snapshots.append(snapshot)
                if out_of_time():
                    stopped_early = True
                    break
        finally:
            chunk_stream.close()

    results.sort(key=lambda result: result.index)
    failures = [failure for result in results for failure in result.failures]
    if config.shrink_failures:
        # The time budget covers shrinking too: grant the shrink phase the
        # remaining budget (or one extra budget when the cases used it all,
        # so a flagged campaign still ships *some* minimization).
        deadline = None
        if config.time_budget is not None:
            remaining = config.time_budget - (time.perf_counter() - started)
            deadline = time.perf_counter() + max(remaining, config.time_budget / 4)
        failures = [_shrink_failure(failure, config, deadline) for failure in failures]

    return CampaignReport(
        config=config,
        case_results=tuple(results),
        failures=tuple(failures),
        elapsed=time.perf_counter() - started,
        engine_stats=merge_snapshots(snapshots),
        stopped_early=stopped_early,
    )


def campaign_corpus(report: CampaignReport) -> list[CorpusEntry]:
    """Regenerate the campaign's cases as a replayable corpus.

    Case generation is a pure function of ``(seed, index)``, so the corpus
    records the *base* pair of every executed case together with the
    consensus verdict the oracle established.  Failing pairs that are not
    base cases — mutants flagged by a metamorphic or differential check —
    are appended as extra entries carrying the failing pair itself (and the
    transfer-rule expected verdict, when defined), so every failure replays
    from the file alone; failures additionally note their shrunk reproducer.
    """
    shrunk_by_case = {
        failure.case_id: failure.shrunk
        for failure in report.failures
        if failure.shrunk is not None
    }

    def shrunk_note(case_id: str) -> str:
        shrunk = shrunk_by_case.get(case_id)
        if shrunk is None:
            return ""
        return f"shrunk reproducer: {shrunk.containee} / {shrunk.containing}"

    entries = []
    for result in report.case_results:
        case = generate_case(report.config, result.index)
        case_id = f"case-{case.index}"
        entries.append(
            CorpusEntry(
                case_id=case_id,
                origin=case.origin,
                containee=case.containee,
                containing=case.containing,
                expected=result.consensus,
                note=shrunk_note(case_id),
            )
        )

    base_ids = {entry.case_id for entry in entries}
    for failure in report.failures:
        if failure.case_id in base_ids:
            continue
        kinds = "/".join(sorted({d.kind for d in failure.discrepancies}))
        note = f"failing mutant ({kinds})"
        extra = shrunk_note(failure.case_id)
        if extra:
            note = f"{note}; {extra}"
        entries.append(
            CorpusEntry(
                case_id=failure.case_id,
                origin=failure.origin,
                containee=failure.containee,
                containing=failure.containing,
                expected=failure.expected,
                note=note,
            )
        )
    return entries
