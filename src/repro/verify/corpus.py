"""Seeded corpus persistence: deterministic replay of fuzz findings.

A corpus is a JSON file of :class:`CorpusEntry` records — (containee,
containing) pairs with their provenance (which generator and seed produced
them, which mutation was applied) and, when known, the consensus verdict
the oracle established.  Campaigns write a corpus with ``--save-corpus``;
:func:`replay_corpus` re-runs the differential oracle over every entry and
flags both fresh discrepancies and verdict drift against the recorded
``expected`` verdict, so a regression introduced by a later PR reproduces
deterministically from the file alone.

The ten hand-written pairs that seeded the original integration tests are
exposed as :func:`builtin_pairs` — the corpus every campaign starts from.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro.io.json_codec import (
    FORMAT_VERSION,
    SerializationError,
    dump_json,
    load_json,
    pair_from_dict,
    pair_to_dict,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_cq
from repro.verify.oracles import (
    Discrepancy,
    OracleConfig,
    OracleReport,
    run_differential_oracle,
)

__all__ = [
    "BUILTIN_PAIR_TEXTS",
    "CorpusEntry",
    "builtin_pairs",
    "entry_from_dict",
    "entry_to_dict",
    "load_corpus",
    "replay_corpus",
    "save_corpus",
]

#: The hand-written (containee, containing) pairs in parser syntax — the
#: original spot-check suite, now the built-in seed corpus.
BUILTIN_PAIR_TEXTS: tuple[tuple[str, str], ...] = (
    ("q1(x) <- R(x, x)", "q2(x) <- R(x, x)"),
    ("q1(x) <- R(x, x)", "q2(x) <- R^2(x, x)"),
    ("q1(x) <- R^2(x, x)", "q2(x) <- R(x, x)"),
    ("q1(x) <- R(x, x)", "q2(x) <- R(x, y)"),
    ("q1(x) <- R(x, a)", "q2(x) <- R(x, y), R(x, a)"),
    ("q1(x, y) <- R(x, y), S(y, x)", "q2(x, y) <- R(x, y), S(y, z)"),
    ("q1(x, y) <- R(x, y), S(y, x)", "q2(x, y) <- R(x, y), S(z, x)"),
    ("q1(x, y) <- R^2(x, y), S(y, x)", "q2(x, y) <- R(x, y), S(y, x)"),
    ("q1(x) <- R(x, a), R(x, b)", "q2(x) <- R(x, y)"),
    ("q1(x) <- R(x, a), R(x, b)", "q2(x) <- R(x, y), R(x, z)"),
)


def builtin_pairs() -> list[tuple[ConjunctiveQuery, ConjunctiveQuery]]:
    """The hand-written seed pairs, parsed."""
    return [(parse_cq(left), parse_cq(right)) for left, right in BUILTIN_PAIR_TEXTS]


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable case: a pair, its provenance and its expected verdict."""

    case_id: str
    origin: str
    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    expected: bool | None = None
    note: str = ""


def entry_to_dict(entry: CorpusEntry) -> dict[str, Any]:
    """Encode one corpus entry."""
    return {
        "kind": "corpus_entry",
        "case_id": entry.case_id,
        "origin": entry.origin,
        "pair": pair_to_dict(entry.containee, entry.containing),
        "expected": entry.expected,
        "note": entry.note,
    }


def entry_from_dict(document: dict[str, Any]) -> CorpusEntry:
    """Decode one corpus entry."""
    if document.get("kind") != "corpus_entry":
        raise SerializationError(
            f"expected a corpus_entry document, got {document.get('kind')!r}"
        )
    containee, containing = pair_from_dict(document["pair"])
    expected = document.get("expected")
    return CorpusEntry(
        case_id=str(document["case_id"]),
        origin=str(document.get("origin", "")),
        containee=containee,
        containing=containing,
        expected=None if expected is None else bool(expected),
        note=str(document.get("note", "")),
    )


def save_corpus(entries: list[CorpusEntry], path: str | Path) -> Path:
    """Persist a corpus to *path* (stable layout, replayable by case id)."""
    document = {
        "kind": "fuzz_corpus",
        "version": FORMAT_VERSION,
        "entries": [entry_to_dict(entry) for entry in entries],
    }
    return dump_json(document, path)


def load_corpus(path: str | Path) -> list[CorpusEntry]:
    """Load a corpus previously written by :func:`save_corpus`."""
    document = load_json(path)
    if document.get("kind") != "fuzz_corpus":
        raise SerializationError(f"{path} is not a fuzz corpus file")
    return [entry_from_dict(entry) for entry in document["entries"]]


def replay_corpus(
    path: str | Path, config: OracleConfig | None = None
) -> list[tuple[CorpusEntry, OracleReport]]:
    """Re-run the oracle over every corpus entry; return the failing ones.

    An entry fails when the oracle reports a discrepancy *or* when the fresh
    consensus verdict differs from the recorded ``expected`` verdict (the
    drift is reported as an extra ``verdict-drift`` discrepancy on the
    returned report).
    """
    failures: list[tuple[CorpusEntry, OracleReport]] = []
    for entry in load_corpus(path):
        report = run_differential_oracle(entry.containee, entry.containing, config)
        if (
            entry.expected is not None
            and report.consensus is not None
            and report.consensus != entry.expected
        ):
            drift = Discrepancy(
                "verdict-drift",
                f"corpus expected {'contained' if entry.expected else 'not contained'} "
                f"but the oracle now answers {'contained' if report.consensus else 'not contained'}",
            )
            report = replace(report, discrepancies=report.discrepancies + (drift,))
        if not report.ok:
            failures.append((entry, report))
    return failures
