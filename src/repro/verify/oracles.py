"""Differential oracles: every decision path must tell the same story.

The library derives the bag-containment verdict along independently
implemented routes — three decision strategies (most-general probe,
all-probes, bounded guess-&-check), four homomorphism backends (naive
reference, compiled indexed engine, integer-interned data plane, and the
codegen backend with adaptive replanning), two Diophantine feasibility paths
(exact Fourier–Motzkin vs the scipy LP fast path) — plus the sound-but-
incomplete refuter baselines and the cross-semantics implications.  A
*differential oracle* runs one (containee, containing) pair through every
requested combination and reports a :class:`Discrepancy` whenever

* two successful runs disagree on the verdict (``verdict-mismatch``);
* a negative verdict ships no counterexample, or its counterexample does
  not replay under direct bag evaluation (``certificate``);
* the bounded/random refuter finds a counterexample although the consensus
  verdict is "contained" (``refuter``);
* a positive bag-containment verdict is not matched by set containment,
  which bag containment implies (``set-semantics``);
* any run dies with an unexpected exception (``error``).

The oracle never raises on a misbehaving pair: failures become data, so a
fuzz campaign can collect, shrink and persist them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.refuters import bounded_bag_refuter, random_bag_refuter
from repro.containment.set_containment import is_set_contained
from repro.core.decision import (
    STRATEGIES,
    BagContainmentResult,
    decide_bag_containment,
    strategy_names,
)
from repro.engine import BACKEND_NAMES, backend_names, use_backend
from repro.exceptions import (
    CertificateError,
    ContainmentError,
    EnumerationBudgetError,
    VerifyError,
)
from repro.queries.cq import ConjunctiveQuery

__all__ = [
    "DIOPHANTINE_PATHS",
    "Discrepancy",
    "OracleConfig",
    "OracleReport",
    "StrategyRun",
    "run_differential_oracle",
]

#: The two routes to deciding the encoded linear system.
DIOPHANTINE_PATHS = ("exact", "lp")


@dataclass(frozen=True)
class OracleConfig:
    """Which combinations the differential oracle exercises.

    ``bounded_guess_max_candidates`` caps the enumeration of the ΠP2
    guess-&-check strategy; pairs whose Lemma 5.1 bound explodes past it
    are recorded as *skipped* rather than failing the oracle.  The refuter
    settings control the sound-but-incomplete cross-checks (``0`` trials
    disables the random refuter).
    """

    strategies: tuple[str, ...] = STRATEGIES
    backends: tuple[str, ...] = BACKEND_NAMES
    diophantine_paths: tuple[str, ...] = DIOPHANTINE_PATHS
    bounded_guess_max_candidates: int = 20_000
    refuter_max_multiplicity: int = 2
    refuter_trials: int = 25
    check_set_semantics: bool = True

    def __post_init__(self) -> None:
        for strategy in self.strategies:
            if strategy not in strategy_names():
                raise VerifyError(
                    f"unknown strategy {strategy!r}; expected one of {strategy_names()}"
                )
        for backend in self.backends:
            if backend not in backend_names():
                raise VerifyError(
                    f"unknown backend {backend!r}; expected one of {backend_names()}"
                )
        for path in self.diophantine_paths:
            if path not in DIOPHANTINE_PATHS:
                raise VerifyError(f"unknown path {path!r}; expected one of {DIOPHANTINE_PATHS}")
        if not (self.strategies and self.backends and self.diophantine_paths):
            raise VerifyError("the oracle needs at least one strategy, backend and path")


@dataclass(frozen=True)
class StrategyRun:
    """One decision run: a (strategy, diophantine path, backend) combination."""

    strategy: str
    path: str
    backend: str
    contained: bool | None = None
    skipped: str | None = None
    error: str | None = None
    certificate_ok: bool | None = None

    @property
    def label(self) -> str:
        return f"{self.strategy}/{self.path}/{self.backend}"


@dataclass(frozen=True)
class Discrepancy:
    """One way the decision paths failed to tell the same story."""

    kind: str
    detail: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass(frozen=True)
class OracleReport:
    """Outcome of one differential-oracle run on a (containee, containing) pair."""

    containee: ConjunctiveQuery
    containing: ConjunctiveQuery
    runs: tuple[StrategyRun, ...] = ()
    discrepancies: tuple[Discrepancy, ...] = ()
    consensus: bool | None = None
    decisions: int = field(default=0)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def describe(self) -> str:
        verdict = {True: "contained", False: "not contained", None: "no consensus"}[self.consensus]
        lines = [
            f"{self.containee.name} vs {self.containing.name}: {verdict} "
            f"({self.decisions} decisions, {len(self.discrepancies)} discrepancies)"
        ]
        lines.extend("  " + discrepancy.describe() for discrepancy in self.discrepancies)
        return "\n".join(lines)


def _run_one(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    strategy: str,
    path: str,
    backend: str,
    config: OracleConfig,
) -> tuple[StrategyRun, list[Discrepancy]]:
    """Run one combination; certificate replay failures become discrepancies."""
    discrepancies: list[Discrepancy] = []
    label = f"{strategy}/{path}/{backend}"
    try:
        with use_backend(backend):
            result = decide_bag_containment(
                containee,
                containing,
                strategy=strategy,
                use_lp=(path == "lp"),
                verify_counterexamples=False,
                max_candidates=config.bounded_guess_max_candidates,
            )
    except EnumerationBudgetError as error:
        return StrategyRun(strategy, path, backend, skipped=str(error)), discrepancies
    except ContainmentError as error:
        discrepancies.append(Discrepancy("error", f"{label} raised: {error}"))
        return StrategyRun(strategy, path, backend, error=str(error)), discrepancies
    except Exception as error:  # noqa: BLE001 - fuzzing must survive anything
        discrepancies.append(Discrepancy("error", f"{label} raised: {error!r}"))
        return StrategyRun(strategy, path, backend, error=repr(error)), discrepancies

    certificate_ok = _replay_certificate(result, label, discrepancies)
    run = StrategyRun(
        strategy, path, backend, contained=result.contained, certificate_ok=certificate_ok
    )
    return run, discrepancies


def _replay_certificate(
    result: BagContainmentResult, label: str, discrepancies: list[Discrepancy]
) -> bool | None:
    """Replay a negative verdict's counterexample through bag evaluation."""
    if result.contained:
        return None
    if result.counterexample is None:
        discrepancies.append(
            Discrepancy("certificate", f"{label} answered 'not contained' without a counterexample")
        )
        return False
    try:
        verified = result.counterexample.verify(result.containee, result.containing)
    except CertificateError as error:
        discrepancies.append(Discrepancy("certificate", f"{label} certificate mismatch: {error}"))
        return False
    if not verified:
        discrepancies.append(
            Discrepancy(
                "certificate",
                f"{label} counterexample does not witness a violation under bag evaluation",
            )
        )
        return False
    return True


def run_differential_oracle(
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    config: OracleConfig | None = None,
) -> OracleReport:
    """Hammer one pair through every requested combination and cross-check.

    The containee must be projection-free (pairs that are not are reported
    as a single ``error`` discrepancy, not raised, so generators feeding the
    oracle do not have to be perfect).
    """
    config = config or OracleConfig()
    runs: list[StrategyRun] = []
    discrepancies: list[Discrepancy] = []

    for strategy in config.strategies:
        # The bounded-guess strategy has no LP path: it enumerates vectors.
        paths = config.diophantine_paths if strategy != "bounded-guess" else ("exact",)
        for path in paths:
            for backend in config.backends:
                run, new_discrepancies = _run_one(
                    containee, containing, strategy, path, backend, config
                )
                runs.append(run)
                discrepancies.extend(new_discrepancies)

    decided = [run for run in runs if run.contained is not None]
    verdicts = {run.contained for run in decided}
    consensus: bool | None = next(iter(verdicts)) if len(verdicts) == 1 else None
    if len(verdicts) > 1:
        positive = sorted(run.label for run in decided if run.contained)
        negative = sorted(run.label for run in decided if not run.contained)
        discrepancies.append(
            Discrepancy(
                "verdict-mismatch",
                f"contained according to {positive} but not according to {negative}",
            )
        )

    if consensus is True:
        try:
            if config.check_set_semantics and not is_set_contained(containee, containing):
                discrepancies.append(
                    Discrepancy(
                        "set-semantics",
                        "bag containment holds but set containment (which it implies) fails",
                    )
                )
            if config.refuter_max_multiplicity > 0:
                outcome = bounded_bag_refuter(
                    containee, containing, max_multiplicity=config.refuter_max_multiplicity
                )
                if outcome.refuted:
                    assert outcome.counterexample is not None
                    discrepancies.append(
                        Discrepancy(
                            "refuter",
                            "bounded refuter found a counterexample against a positive "
                            f"consensus: {outcome.counterexample.describe()}",
                        )
                    )
            if config.refuter_trials > 0:
                outcome = random_bag_refuter(
                    containee, containing, trials=config.refuter_trials, seed=0
                )
                if outcome.refuted:
                    assert outcome.counterexample is not None
                    discrepancies.append(
                        Discrepancy(
                            "refuter",
                            "random refuter found a counterexample against a positive "
                            f"consensus: {outcome.counterexample.describe()}",
                        )
                    )
        except Exception as error:  # noqa: BLE001 - cross-checks must not crash campaigns
            discrepancies.append(Discrepancy("error", f"cross-check raised: {error!r}"))

    return OracleReport(
        containee=containee,
        containing=containing,
        runs=tuple(runs),
        discrepancies=tuple(discrepancies),
        consensus=consensus,
        decisions=len(decided),
    )
