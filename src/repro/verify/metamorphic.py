"""Metamorphic mutations with provable verdict-transfer rules.

Each mutation rewrites a (containee, containing) pair into a related pair
whose bag-containment verdict is *constrained* by the original verdict.
The constraint is one of three :data:`TransferRule` values, each backed by
a small theorem about Equation 2 (answers are sums over homomorphisms of
products of fact multiplicities raised to body exponents):

``equal`` — the mutation is semantics-preserving.
    *Variable renaming* (one injective renaming applied to both queries)
    produces an isomorphic pair — and, because the query constructor sorts
    body atoms by their rendered form, renaming also permutes the canonical
    atom order, so it doubles as the atom-permutation check.  *Head
    permutation* (the same position shuffle applied to both heads) is a
    bijection on answer tuples, so the universally quantified containment
    statement is unchanged.

``preserves-contained`` — ``q1 ⊑b q2`` implies the mutant is contained.
    *Amplifying the containing query* by ``k`` turns each homomorphism
    contribution ``c`` into ``c^k``; contributions are natural numbers, so
    ``c^k ≥ c`` and the containing polynomial only grows.  *Self-join
    duplication of the containing query* (conjoining a copy with its
    existential variables renamed apart) squares the polynomial, and
    ``P² ≥ P`` over the naturals.  *Constant freezing* (grounding one
    shared head variable to a fresh constant on both sides) restricts the
    quantification over answer tuples, so a universally-true containment
    stays true.

``preserves-not-contained`` — ``q1 ⋢b q2`` implies the mutant is not contained.
    *Amplifying the containee* by ``k`` turns its monomial value ``M`` into
    ``M^k``; a counterexample bag has ``M > P ≥ 0``, hence ``M ≥ 1`` and
    ``M^k ≥ M > P``, so the same bag still witnesses the violation.

A mutation may be inapplicable to a particular pair (e.g. constant freezing
needs a shared head); ``apply`` then returns ``None`` and the campaign
simply skips the metamorphic check for that case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.queries.cq import ConjunctiveQuery
from repro.relational.atoms import Atom
from repro.relational.substitutions import Substitution
from repro.relational.terms import Constant, Variable
from repro.workloads.structured import amplified_query

__all__ = [
    "MUTATIONS",
    "MetamorphicMutation",
    "TransferRule",
    "expected_verdict",
    "mutation_by_name",
]

#: How the original verdict constrains the mutant's verdict.
TransferRule = str  # "equal" | "preserves-contained" | "preserves-not-contained"

Pair = tuple[ConjunctiveQuery, ConjunctiveQuery]


@dataclass(frozen=True)
class MetamorphicMutation:
    """A named pair rewrite with its verdict-transfer rule."""

    name: str
    rule: TransferRule
    apply: Callable[[ConjunctiveQuery, ConjunctiveQuery, random.Random], Pair | None]


def expected_verdict(rule: TransferRule, original: bool) -> bool | None:
    """The verdict the mutant *must* have, or ``None`` when unconstrained."""
    if rule == "equal":
        return original
    if rule == "preserves-contained":
        return True if original else None
    if rule == "preserves-not-contained":
        return None if original else False
    raise ValueError(f"unknown transfer rule {rule!r}")


# --------------------------------------------------------------------------- #
# Semantics-preserving mutations
# --------------------------------------------------------------------------- #
def _rename_variables(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery, rng: random.Random
) -> Pair:
    shared = sorted(containee.variables() | containing.variables(), key=str)
    images = [Variable(f"v{index}") for index in range(len(shared))]
    rng.shuffle(images)
    renaming = dict(zip(shared, images))
    return (
        containee.rename_variables(renaming, name=containee.name),
        containing.rename_variables(renaming, name=containing.name),
    )


def _permute_head(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery, rng: random.Random
) -> Pair | None:
    if containee.arity != containing.arity or containee.arity < 2:
        return None
    positions = list(range(containee.arity))
    rng.shuffle(positions)
    return (
        containee.with_head(tuple(containee.head[index] for index in positions)),
        containing.with_head(tuple(containing.head[index] for index in positions)),
    )


# --------------------------------------------------------------------------- #
# Containment-preserving mutations (True → True)
# --------------------------------------------------------------------------- #
def _amplify_containing(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery, rng: random.Random
) -> Pair:
    return containee, amplified_query(containing, rng.randint(2, 3), name=containing.name)


def _self_join_containing(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery, rng: random.Random
) -> Pair:
    existentials = sorted(containing.existential_variables(), key=str)
    # The copy's existentials must be renamed *apart*: fresh names may not
    # collide with any variable of either query, or the copy would capture
    # a shared variable and the P² transfer argument would not apply.
    used = {variable.name for variable in containing.variables() | containee.variables()}
    fresh = (Variable(f"w{index}") for index in range(len(used) + len(existentials)))
    renaming = {
        variable: image
        for variable, image in zip(existentials, (v for v in fresh if v.name not in used))
    }
    copy = containing.rename_variables(renaming) if renaming else containing
    body: dict[Atom, int] = dict(containing.body)
    for atom, multiplicity in copy.body.items():
        body[atom] = body.get(atom, 0) + multiplicity
    return containee, ConjunctiveQuery(containing.head, body, name=containing.name)


def _freeze_constant(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery, rng: random.Random
) -> Pair | None:
    if containee.head != containing.head or not containee.head:
        return None
    # Keep at least one head position so the pair stays non-boolean.
    candidates = sorted(containee.head_variables(), key=str)
    if len(candidates) < 2:
        return None
    variable = rng.choice(candidates)
    frozen = Substitution({variable: Constant(f"frozen_{variable.name}")})
    return (
        containee.apply_substitution(frozen, name=containee.name),
        containing.apply_substitution(frozen, name=containing.name),
    )


# --------------------------------------------------------------------------- #
# Non-containment-preserving mutations (False → False)
# --------------------------------------------------------------------------- #
def _amplify_containee(
    containee: ConjunctiveQuery, containing: ConjunctiveQuery, rng: random.Random
) -> Pair:
    return amplified_query(containee, rng.randint(2, 3), name=containee.name), containing


#: The mutation registry, in campaign presentation order.
MUTATIONS: tuple[MetamorphicMutation, ...] = (
    MetamorphicMutation("rename-variables", "equal", _rename_variables),
    MetamorphicMutation("permute-head", "equal", _permute_head),
    MetamorphicMutation("amplify-containing", "preserves-contained", _amplify_containing),
    MetamorphicMutation("self-join-containing", "preserves-contained", _self_join_containing),
    MetamorphicMutation("freeze-constant", "preserves-contained", _freeze_constant),
    MetamorphicMutation("amplify-containee", "preserves-not-contained", _amplify_containee),
)


def mutation_by_name(name: str) -> MetamorphicMutation:
    """Look a mutation up by its registry name."""
    for mutation in MUTATIONS:
        if mutation.name == name:
            return mutation
    raise ValueError(f"unknown mutation {name!r}; expected one of {[m.name for m in MUTATIONS]}")
