"""Parallel sharded execution: one request stream, many worker processes.

The decision procedure is the kind of primitive a query optimizer calls
thousands of times per workload (view selection, rewrite enumeration), and
one Python process tops out at one core.  This module fans a
:meth:`~repro.session.Session.batch` request stream — or any chunkable
workload, the fuzz campaign runner reuses the same harness — across a
``multiprocessing`` pool while keeping the guarantees the serial path
gives:

**Determinism.**  Requests are sharded into contiguous chunks and results
stream back to the caller **in request order**, no matter which worker
finished first.  Verdicts and certificates are pure functions of the
request, so the parallel outcome stream is identical to the serial one.

**Work stealing.**  Chunks are dispatched to workers as they free up (the
pool's shared task queue), so a skewed workload — a few expensive
requests among many cheap ones — balances automatically.
:func:`default_chunk_size` aims at several chunks per worker: small enough
to steal, large enough to amortise IPC.

**Session rehydration.**  Sessions own engine caches full of compiled
plans; shipping one to a worker would serialize the whole cache.  Instead
each worker rehydrates a fresh twin from the parent session's picklable
:class:`~repro.session.SessionSpec` fingerprint (pool initializer), runs
its shard against its own cache, and ships back outcomes plus a
:func:`~repro.engine.cache.snapshot_delta` of what the shard did to that
cache.  The parent folds the deltas into its own cache statistics
(:meth:`~repro.engine.cache.EngineCache.absorb_delta`) exactly once per
shard, so fleet-wide stats stay observable in one place; persistent-tier
counters travel the same way as the ``persist`` / ``persist-health``
pseudo-layers.

**Batch-stream survival.**  :func:`parallel_batch` schedules each shard as
its own pool task and supervises the handles directly.  A shard whose
worker crashes (or exceeds ``task_timeout``) is retried once on another
worker; a shard that keeps failing is bisected until the poison request is
isolated.  Under ``capture_errors=True`` the poison request becomes an
honest quarantined :class:`~repro.session.Outcome`
(``degraded="quarantined"``) and **every other request still completes, in
order, with its cache delta folded in exactly once**; otherwise the
original worker-side exception re-raises as :class:`ParallelError` with
the failing request's index and fingerprint in the message and the
original traceback chained as its ``__cause__``.

**Clean shutdown.**  Worker-side failures — including
``KeyboardInterrupt`` — are caught *inside* the worker and shipped back as
values, so the pool never hangs on a dead worker; the parent re-raises
(``KeyboardInterrupt`` as itself, anything else as
:class:`~repro.exceptions.ParallelError`) and the pool is terminated and
joined before the exception propagates.  Closing the outcome iterator
early (e.g. a time budget) tears the pool down the same way.

When to parallelise: memoisation beats parallelism on repetitive streams
(a repeated request is a cache hit in one process but a re-computation in
every worker shard), so reach for ``jobs=`` when the stream is dominated
by *distinct* requests and for ``memoize`` when it repeats itself.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import multiprocessing
import multiprocessing.pool
import os
import pickle
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence, TypeVar

from repro.engine.cache import merge_snapshots, snapshot_delta
from repro.engine.fingerprints import persistent_digest
from repro.exceptions import FaultInjected, ParallelError
from repro.faults.plan import check as fault_check
from repro.faults.plan import request_scope, use_faults
from repro.session.requests import Outcome
from repro.session.session import Session, SessionSpec

__all__ = [
    "default_chunk_size",
    "merged_cache_stats",
    "parallel_batch",
    "pool_imap",
    "resolve_jobs",
    "shard",
]

_T = TypeVar("_T")


#: Distinguishes absorb-delta tokens across parallel_batch calls (an ``id()``
#: would do until the allocator recycled it onto a later batch).
_BATCH_COUNTER = itertools.count(1)

_AUTO_SERIAL_WARNED = False

#: How long a supervising ``parallel_batch`` blocks on the next-to-yield
#: shard before sweeping every in-flight handle for completions/timeouts.
_POLL_INTERVAL = 0.05


def resolve_jobs(jobs: int | str) -> int:
    """Resolve a ``jobs=`` request — a positive int or ``"auto"`` — to a count.

    ``"auto"`` asks for one worker per available core.  On a single-core
    machine that degenerates to the serial path, which is the right call
    (a one-worker pool only adds rehydration and IPC overhead on top of the
    identical serial semantics) but easy to miss — so the fallback warns,
    once per process, instead of silently ignoring the parallelism request.
    """
    global _AUTO_SERIAL_WARNED
    if jobs == "auto":
        cores = os.cpu_count() or 1
        if cores <= 1:
            if not _AUTO_SERIAL_WARNED:
                _AUTO_SERIAL_WARNED = True
                warnings.warn(
                    "jobs='auto' found a single-core machine; "
                    "running the batch serially (warned once per process)",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return 1
        return cores
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ParallelError(f"jobs must be a positive int or 'auto', got {jobs!r}")
    if jobs < 1:
        raise ParallelError("jobs must be at least 1")
    return jobs


# --------------------------------------------------------------------- #
# Sharding
# --------------------------------------------------------------------- #
def default_chunk_size(total: int, jobs: int) -> int:
    """Requests per worker task: several chunks per worker, bounded for IPC.

    Aiming at ~4 chunks per worker keeps the pool's task queue non-empty
    long enough for work stealing to smooth skewed workloads, while the cap
    keeps per-task pickling overhead amortised over real work.
    """
    if total <= 0:
        return 1
    return max(1, min(32, -(-total // (jobs * 4))))


def shard(items: Sequence[_T], chunk_size: int) -> list[tuple[int, tuple[_T, ...]]]:
    """Split *items* into contiguous ``(start_index, chunk)`` shards."""
    if chunk_size < 1:
        raise ParallelError("chunk_size must be at least 1")
    return [
        (start, tuple(items[start : start + chunk_size]))
        for start in range(0, len(items), chunk_size)
    ]


# --------------------------------------------------------------------- #
# The generic pool harness
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _WorkerFailure:
    """A worker-side failure shipped back as a value (never as a dead worker)."""

    kind: str  # "interrupt" | "error"
    message: str
    details: str
    #: The pickled original exception, when it round-trips; the parent
    #: revives it so ``raise ParallelError(...) from original`` preserves
    #: the real exception object across the process boundary.
    payload: bytes | None = None
    #: Absolute request index / fingerprint, when the failure is
    #: attributable to one request (set by :class:`_AnnotatedRequestError`).
    index: int | None = None
    fingerprint: str | None = None
    #: True when the *request itself* raised (decision-procedure error, not
    #: a harness/injected fault) — retrying a deterministic error is
    #: pointless, so the supervisor aborts like the serial path instead.
    request_error: bool = False


class _AnnotatedRequestError(Exception):
    """Worker-internal carrier tagging a failure with the request it hit."""

    def __init__(
        self,
        index: int,
        fingerprint: str,
        cause: BaseException,
        request_error: bool = False,
    ) -> None:
        super().__init__(repr(cause))
        self.index = index
        self.fingerprint = fingerprint
        self.cause = cause
        self.request_error = request_error


class _RemoteTraceback(Exception):
    """Renders a worker-side traceback under the chained :class:`ParallelError`."""

    def __init__(self, details: str) -> None:
        super().__init__(details)
        self.details = details

    def __str__(self) -> str:
        return "\n" + self.details


def _pickle_exception(error: BaseException) -> bytes | None:
    """The exception pickled, or ``None`` when it cannot round-trip."""
    try:
        blob = pickle.dumps(error)
        pickle.loads(blob)
    except Exception:  # noqa: BLE001 - any pickling failure means "not portable"
        return None
    return blob


def _request_fingerprint(request: Any) -> str:
    """A short stable identifier for a request in error messages."""
    try:
        return persistent_digest(request)[:16]
    except Exception:  # noqa: BLE001 - unfingerprintable requests fall back to their type
        return type(request).__name__


def _guarded_call(fn: Callable[[Any], Any], payload: Any) -> Any:
    """Run one task, converting every failure — even ``KeyboardInterrupt`` —
    into a :class:`_WorkerFailure` value.

    ``multiprocessing.Pool`` workers only survive ``Exception``; a
    ``BaseException`` escaping a task kills the worker and the lost task
    hangs the pool forever.  Catching everything here is what makes
    shutdown clean and testable.
    """
    try:
        return fn(payload)
    except _AnnotatedRequestError as annotated:
        cause = annotated.cause
        details = "".join(
            traceback.format_exception(type(cause), cause, cause.__traceback__)
        )
        return _WorkerFailure(
            "error",
            repr(cause),
            details,
            payload=_pickle_exception(cause),
            index=annotated.index,
            fingerprint=annotated.fingerprint,
            request_error=annotated.request_error,
        )
    except Exception as error:  # noqa: BLE001 - shipped to the parent
        return _WorkerFailure(
            "error", repr(error), traceback.format_exc(), payload=_pickle_exception(error)
        )
    except BaseException as error:  # noqa: BLE001 - incl. KeyboardInterrupt
        kind = "interrupt" if isinstance(error, KeyboardInterrupt) else "error"
        return _WorkerFailure(kind, repr(error), traceback.format_exc())


def _revive_cause(failure: _WorkerFailure) -> BaseException:
    """The exception to chain under a :class:`ParallelError` for *failure*.

    Preference order: the revived original exception (with the remote
    traceback attached as *its* cause so the full worker-side stack renders
    in the parent's traceback), else the remote-traceback carrier alone.
    """
    remote = _RemoteTraceback(failure.details) if failure.details else None
    cause: BaseException | None = None
    if failure.payload is not None:
        try:
            revived = pickle.loads(failure.payload)
        except Exception:  # noqa: BLE001 - stale/unloadable payloads degrade to the text form
            revived = None
        if isinstance(revived, BaseException):
            cause = revived
    if cause is None:
        return remote if remote is not None else _RemoteTraceback(failure.message)
    if remote is not None:
        cause.__cause__ = remote
    return cause


def _reraise(failure: _WorkerFailure) -> None:
    if failure.kind == "interrupt":
        raise KeyboardInterrupt(failure.message)
    where = ""
    if failure.index is not None:
        fingerprint = failure.fingerprint or "unfingerprinted"
        where = f" on request {failure.index} ({fingerprint})"
    raise ParallelError(f"worker failed{where}: {failure.message}") from _revive_cause(
        failure
    )


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (where available) inherits registered plugin backends/strategies
    # and imported modules; spawn works too but re-imports from scratch.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def pool_imap(
    fn: Callable[[Any], Any],
    payloads: Iterable[Any],
    jobs: int,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    ordered: bool = True,
) -> Iterator[Any]:
    """Map *fn* over *payloads* on a worker pool, with clean shutdown.

    *fn* must be a picklable module-level callable.  Results stream back in
    payload order (``ordered=True``) or completion order; either way tasks
    are pulled from a shared queue, so scheduling is work-stealing.  Worker
    failures re-raise in the parent (``KeyboardInterrupt`` as itself,
    everything else as :class:`ParallelError`); the pool is terminated and
    joined on any exit path, including the caller closing the iterator
    early.
    """
    if jobs < 1:
        raise ParallelError("jobs must be at least 1")
    payloads = list(payloads)
    if not payloads:
        return
    context = _pool_context()
    pool = context.Pool(processes=jobs, initializer=initializer, initargs=initargs)
    clean_exit = False
    try:
        guarded = functools.partial(_guarded_call, fn)
        iterator = pool.imap(guarded, payloads) if ordered else pool.imap_unordered(guarded, payloads)
        for result in iterator:
            if isinstance(result, _WorkerFailure):
                _reraise(result)
            yield result
        pool.close()
        clean_exit = True
    finally:
        if not clean_exit:
            pool.terminate()
        pool.join()


# --------------------------------------------------------------------- #
# The Session.batch() worker path
# --------------------------------------------------------------------- #
#: The rehydrated per-process session of the current batch (pool initializer),
#: or the recorded rehydration failure.  An initializer must never raise: a
#: worker dying during bootstrap makes the pool respawn it in an unbounded
#: loop (the lost task is never executed, so the pool blocks forever) —
#: reachable e.g. under ``spawn`` when a plugin backend is not registered in
#: the re-imported worker.  The first task re-raises the recorded failure
#: instead, which ships back to the parent as a :class:`ParallelError`.
_WORKER_SESSION: Session | None = None
_WORKER_INIT_ERROR: str | None = None


def _batch_worker_init(spec: SessionSpec) -> None:
    global _WORKER_SESSION, _WORKER_INIT_ERROR
    try:
        _WORKER_SESSION = spec.build()  # lint: disable=fork-shared-state -- deliberate per-worker state installed by the pool initializer inside the worker; the parent never reads it
    except BaseException as error:  # noqa: BLE001 - see _WORKER_SESSION note
        _WORKER_INIT_ERROR = repr(error)  # lint: disable=fork-shared-state -- deliberate per-worker error capture inside the worker; surfaced via task results, not the parent module


@dataclass(frozen=True)
class _ChunkResult:
    """One shard's outcomes plus what the shard did to the worker's cache."""

    start: int
    outcomes: tuple[Outcome, ...]
    cache_delta: Mapping[str, tuple[int, int, int]]
    elapsed: float


def _persist_counters(session: Session) -> tuple[int, int, int, int, int, int] | None:
    """The persistent tier's counters, or ``None`` when no tier is attached."""
    persistent = session.persistent
    if persistent is None:
        return None
    stats = persistent.stats
    return (
        stats.hits,
        stats.misses,
        stats.stores,
        stats.errors,
        stats.retries,
        stats.breaker_skipped,
    )


def _persist_delta(
    session: Session, before: tuple[int, int, int, int, int, int] | None
) -> dict[str, tuple[int, int, int]]:
    """The shard's persistent-tier counter movement as pseudo-layers.

    ``EngineCache.absorb_delta`` skips layer names it does not own, so
    these ride inside the ordinary cache delta; the parent folds them into
    its own :class:`~repro.engine.persist.PersistStats` on absorption.
    """
    after = _persist_counters(session)
    if after is None or before is None:
        return {}
    moved = tuple(now - then for now, then in zip(after, before))
    if not any(moved):
        return {}
    return {
        "persist": (moved[0], moved[1], moved[2]),
        "persist-health": (moved[3], moved[4], moved[5]),
    }


def _fold_persist_delta(
    session: Session, delta: Mapping[str, tuple[int, int, int]]
) -> None:
    """Fold a shard's ``persist`` / ``persist-health`` pseudo-layers into the
    parent session's persistent-tier statistics (called once per absorbed
    shard, so the exactly-once guarantee extends to these counters)."""
    persistent = session.persistent
    if persistent is None:
        return
    hits, misses, stores = delta.get("persist", (0, 0, 0))
    errors, retries, breaker_skipped = delta.get("persist-health", (0, 0, 0))
    stats = persistent.stats
    stats.hits += hits
    stats.misses += misses
    stats.stores += stores
    stats.errors += errors
    stats.retries += retries
    stats.breaker_skipped += breaker_skipped


def _run_request_chunk(payload: tuple[int, tuple[Any, ...], bool]) -> _ChunkResult:
    start, requests, capture_errors = payload
    session = _WORKER_SESSION
    if session is None:
        raise ParallelError(
            "batch worker failed to rehydrate its session: "
            f"{_WORKER_INIT_ERROR or 'no session spec received'}"
        )
    before = session.cache.snapshot()
    persist_before = _persist_counters(session)
    started = time.perf_counter()
    outcomes: list[Outcome] = []
    # Arm the rehydrated session's fault plan around the whole loop (not
    # just inside submit/activate) so ``parallel.request`` faults can fire
    # *before* the session's error capture gets a chance to swallow them —
    # an injected crash must kill the task even under capture_errors.
    with use_faults(session.active_faults):
        for offset, request in enumerate(requests):
            index = start + offset
            with request_scope(index):
                rule = fault_check("parallel.request", key=index)
                if rule is not None:
                    if rule.action == "hang":
                        # Simulated hang: park well past any plausible
                        # task_timeout; the parent times the task out and
                        # reschedules the shard on another worker.
                        time.sleep((rule.delay_ms or 60_000.0) / 1000.0)
                    else:
                        raise _AnnotatedRequestError(
                            index,
                            _request_fingerprint(request),
                            FaultInjected(
                                f"injected worker crash (parallel.request, request {index})"
                            ),
                        )
                try:
                    outcome = (
                        session.submit_captured(request)
                        if capture_errors
                        else session.submit(request)
                    )
                except Exception as error:
                    raise _AnnotatedRequestError(
                        index, _request_fingerprint(request), error, request_error=True
                    ) from error
            outcomes.append(outcome)
    delta = snapshot_delta(session.cache.snapshot(), before)
    delta.update(_persist_delta(session, persist_before))
    return _ChunkResult(
        start=start,
        outcomes=tuple(outcomes),
        cache_delta=delta,
        elapsed=time.perf_counter() - started,
    )


@dataclass
class _Segment:
    """One contiguous shard under supervision: its requests and, once a
    worker delivered, its outcomes and cache delta."""

    start: int
    requests: tuple[Any, ...]
    #: Submissions so far; bisected children start at 1 (the parent shard
    #: already spent the retry), so they escalate straight to bisection.
    attempts: int = 0
    outcomes: tuple[Outcome, ...] | None = None
    cache_delta: Mapping[str, tuple[int, int, int]] | None = None


def _quarantined_outcome(request: Any, index: int, failure: _WorkerFailure) -> Outcome:
    fingerprint = failure.fingerprint or _request_fingerprint(request)
    return Outcome(
        request=request,
        value=None,
        error=(
            f"quarantined after repeated worker failure on request {index} "
            f"({fingerprint}): {failure.message}"
        ),
        degraded="quarantined",
    )


def parallel_batch(
    session: Session,
    requests: Sequence[Any],
    jobs: int,
    chunk_size: int | None = None,
    capture_errors: bool = False,
    task_timeout: float | None = None,
) -> Iterator[Outcome]:
    """Shard *requests* across *jobs* worker sessions; stream ordered outcomes.

    This is the engine behind ``Session.batch(requests, jobs=N)``.  Every
    worker rehydrates ``session.spec()`` (same backend, limits, memoisation
    and fault plan — fresh cache), shards are scheduled work-stealing
    style, and outcomes are yielded strictly in request order with each
    outcome's ``request`` field rebound to the caller's own object.  Worker
    cache deltas are folded into the parent session's statistics exactly
    once per shard as the results land.

    Survival: a shard whose worker crashes — or, with ``task_timeout`` set,
    exceeds its wall-clock bound (a hung worker) — is retried once on
    another worker, then bisected until the poison request is isolated.
    With ``capture_errors=True`` the poison request yields an honest
    ``degraded="quarantined"`` :class:`Outcome` while every other request
    completes normally; with ``capture_errors=False`` the stream aborts
    like the serial path, but the worker-side exception arrives as
    :class:`ParallelError` naming the request's index and fingerprint,
    with the original exception (or a remote-traceback carrier) chained as
    ``__cause__``.  A *request-level* exception (the decision procedure
    itself raising) is deterministic and is never retried: it aborts
    immediately under ``capture_errors=False`` and is captured worker-side
    otherwise.
    """
    requests = list(requests)
    if jobs <= 1 or len(requests) <= 1:
        # Not worth a pool; keep semantics by delegating to the serial path.
        yield from session.batch(requests, capture_errors=capture_errors)
        return
    batch_id = next(_BATCH_COUNTER)
    size = chunk_size if chunk_size is not None else default_chunk_size(len(requests), jobs)
    segments: dict[int, _Segment] = {}
    order: list[int] = []
    for start, chunk in shard(requests, size):
        segments[start] = _Segment(start=start, requests=chunk)
        order.append(start)
    guarded = functools.partial(_guarded_call, _run_request_chunk)
    spec = session.spec()
    context = _pool_context()
    workers = min(jobs, len(order))
    pool = context.Pool(
        processes=workers, initializer=_batch_worker_init, initargs=(spec,)
    )
    #: In-flight shards: start index -> (segment, async handle, submit time).
    #: At most one live handle per start; a timed-out handle is dropped
    #: here, so its late result (if the worker ever wakes) is discarded.
    active: dict[int, tuple[_Segment, multiprocessing.pool.AsyncResult[Any], float]] = {}

    def submit(segment: _Segment, count_attempt: bool = True) -> None:
        if count_attempt:
            segment.attempts += 1
        payload = (segment.start, segment.requests, capture_errors)
        handle = pool.apply_async(guarded, (payload,))
        active[segment.start] = (segment, handle, time.monotonic())

    def restart_pool() -> None:
        # A hung worker cannot be killed individually, and it wedges one
        # pool slot (worst case: every slot) so queued shards would starve
        # and spuriously time out.  Rebuilding the pool kills the hung
        # process; unfinished shards are resubmitted by the caller.
        nonlocal pool
        pool.terminate()
        pool.join()
        active.clear()
        pool = context.Pool(
            processes=workers, initializer=_batch_worker_init, initargs=(spec,)
        )

    def escalate(segment: _Segment, failure: _WorkerFailure) -> None:
        # Retry the whole shard once on another worker (a crashed worker's
        # pool slot is respawned); a shard that fails again is bisected so
        # the poison request isolates in O(log chunk) resubmissions.
        if segment.attempts < 2:
            submit(segment)
            return
        if len(segment.requests) > 1:
            mid = len(segment.requests) // 2
            left = _Segment(segment.start, segment.requests[:mid], attempts=1)
            right = _Segment(segment.start + mid, segment.requests[mid:], attempts=1)
            position = order.index(segment.start)
            segments[left.start] = left
            segments[right.start] = right
            order.insert(position + 1, right.start)
            submit(left)
            submit(right)
            return
        if capture_errors:
            segment.outcomes = (
                _quarantined_outcome(segment.requests[0], segment.start, failure),
            )
            segment.cache_delta = None
            return
        _reraise(failure)

    def handle_failure(segment: _Segment, failure: _WorkerFailure) -> None:
        if failure.kind == "interrupt":
            raise KeyboardInterrupt(failure.message)
        if failure.request_error and not capture_errors:
            # The request itself raised: deterministic, so retrying cannot
            # help — abort the stream like the serial path would.
            _reraise(failure)
        escalate(segment, failure)

    def sweep(block_on: int) -> None:
        # Block briefly on the next-to-yield shard, then settle every
        # in-flight handle that is ready or past its timeout.
        entry = active.get(block_on)
        if entry is not None:
            entry[1].wait(_POLL_INTERVAL)
        else:
            time.sleep(_POLL_INTERVAL / 5)
        now = time.monotonic()
        for start, (segment, handle, submitted_at) in list(active.items()):
            if handle.ready():
                del active[start]
                try:
                    result = handle.get()
                except Exception as error:  # noqa: BLE001 - e.g. an unpicklable result
                    result = _WorkerFailure("error", repr(error), traceback.format_exc())
                if isinstance(result, _WorkerFailure):
                    handle_failure(segment, result)
                elif segments.get(segment.start) is segment:
                    segment.outcomes = result.outcomes
                    segment.cache_delta = result.cache_delta
            elif task_timeout is not None and now - submitted_at > task_timeout:
                # The worker is hung (or the queue is starved behind one).
                # Rebuild the pool to kill the wedged process, escalate the
                # timed-out shard only, and resubmit every other unfinished
                # shard without charging its retry budget — an innocent
                # shard must never be quarantined for a neighbour's hang.
                restart_pool()
                handle_failure(
                    segment,
                    _WorkerFailure(
                        "error",
                        f"worker task exceeded task_timeout={task_timeout:g}s "
                        f"(shard [{segment.start}, {segment.start + len(segment.requests)}))",
                        "",
                    ),
                )
                for other_start in order:
                    other = segments[other_start]
                    if other.outcomes is None and other_start not in active:
                        submit(other, count_attempt=False)
                return

    clean_exit = False
    try:
        for start in list(order):
            submit(segments[start])
        cursor = 0
        while cursor < len(order):
            segment = segments[order[cursor]]
            if segment.outcomes is None:
                sweep(segment.start)
                continue
            if segment.cache_delta is not None:
                # Token per (batch, start, length): a shard retried after a
                # worker failure folds its delta in once, and a bisected
                # child at the parent's start never collides with it.
                token = ("batch", batch_id, segment.start, len(segment.requests))
                if session.cache.absorb_delta(segment.cache_delta, token=token):
                    _fold_persist_delta(session, segment.cache_delta)
            for offset, outcome in enumerate(segment.outcomes):
                original = requests[segment.start + offset]
                yield dataclasses.replace(outcome, request=original)
            cursor += 1
        pool.close()
        clean_exit = True
    finally:
        if not clean_exit:
            pool.terminate()
        pool.join()


def merged_cache_stats(outcomes: Iterable[Outcome]) -> dict[str, tuple[int, int, int]]:
    """Fold the per-outcome cache deltas of a batch into one fleet-wide snapshot.

    Serial and parallel streams merge to the same totals whenever the
    requests do not share cacheable work across shard boundaries (distinct
    pairs); on repetitive streams the serial path shows more hits — the
    memoisation-vs-parallelism trade-off the module docstring describes.
    """
    return merge_snapshots(outcome.cache for outcome in outcomes)
