"""Parallel sharded execution: one request stream, many worker processes.

The decision procedure is the kind of primitive a query optimizer calls
thousands of times per workload (view selection, rewrite enumeration), and
one Python process tops out at one core.  This module fans a
:meth:`~repro.session.Session.batch` request stream — or any chunkable
workload, the fuzz campaign runner reuses the same harness — across a
``multiprocessing`` pool while keeping the guarantees the serial path
gives:

**Determinism.**  Requests are sharded into contiguous chunks and results
stream back to the caller **in request order**, no matter which worker
finished first (``pool.imap`` reorders internally).  Verdicts and
certificates are pure functions of the request, so the parallel outcome
stream is identical to the serial one.

**Work stealing.**  Chunks are dispatched to workers as they free up (the
pool's shared task queue), so a skewed workload — a few expensive
requests among many cheap ones — balances automatically.
:func:`default_chunk_size` aims at several chunks per worker: small enough
to steal, large enough to amortise IPC.

**Session rehydration.**  Sessions own engine caches full of compiled
plans; shipping one to a worker would serialize the whole cache.  Instead
each worker rehydrates a fresh twin from the parent session's picklable
:class:`~repro.session.SessionSpec` fingerprint (pool initializer), runs
its shard against its own cache, and ships back outcomes plus a
:func:`~repro.engine.cache.snapshot_delta` of what the shard did to that
cache.  The parent folds the deltas into its own cache statistics
(:meth:`~repro.engine.cache.EngineCache.absorb_delta`), so fleet-wide
stats stay observable in one place.

**Clean shutdown.**  Worker-side failures — including
``KeyboardInterrupt`` — are caught *inside* the worker and shipped back as
values, so the pool never hangs on a dead worker; the parent re-raises
(``KeyboardInterrupt`` as itself, anything else as
:class:`~repro.exceptions.ParallelError`) and the pool is terminated and
joined before the exception propagates.  Closing the outcome iterator
early (e.g. a time budget) tears the pool down the same way.

When to parallelise: memoisation beats parallelism on repetitive streams
(a repeated request is a cache hit in one process but a re-computation in
every worker shard), so reach for ``jobs=`` when the stream is dominated
by *distinct* requests and for ``memoize`` when it repeats itself.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import multiprocessing
import os
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence, TypeVar

from repro.engine.cache import merge_snapshots, snapshot_delta
from repro.exceptions import ParallelError
from repro.session.requests import Outcome
from repro.session.session import Session, SessionSpec

__all__ = [
    "default_chunk_size",
    "merged_cache_stats",
    "parallel_batch",
    "pool_imap",
    "resolve_jobs",
    "shard",
]

_T = TypeVar("_T")


#: Distinguishes absorb-delta tokens across parallel_batch calls (an ``id()``
#: would do until the allocator recycled it onto a later batch).
_BATCH_COUNTER = itertools.count(1)

_AUTO_SERIAL_WARNED = False


def resolve_jobs(jobs: int | str) -> int:
    """Resolve a ``jobs=`` request — a positive int or ``"auto"`` — to a count.

    ``"auto"`` asks for one worker per available core.  On a single-core
    machine that degenerates to the serial path, which is the right call
    (a one-worker pool only adds rehydration and IPC overhead on top of the
    identical serial semantics) but easy to miss — so the fallback warns,
    once per process, instead of silently ignoring the parallelism request.
    """
    global _AUTO_SERIAL_WARNED
    if jobs == "auto":
        cores = os.cpu_count() or 1
        if cores <= 1:
            if not _AUTO_SERIAL_WARNED:
                _AUTO_SERIAL_WARNED = True
                warnings.warn(
                    "jobs='auto' found a single-core machine; "
                    "running the batch serially (warned once per process)",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return 1
        return cores
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ParallelError(f"jobs must be a positive int or 'auto', got {jobs!r}")
    if jobs < 1:
        raise ParallelError("jobs must be at least 1")
    return jobs


# --------------------------------------------------------------------- #
# Sharding
# --------------------------------------------------------------------- #
def default_chunk_size(total: int, jobs: int) -> int:
    """Requests per worker task: several chunks per worker, bounded for IPC.

    Aiming at ~4 chunks per worker keeps the pool's task queue non-empty
    long enough for work stealing to smooth skewed workloads, while the cap
    keeps per-task pickling overhead amortised over real work.
    """
    if total <= 0:
        return 1
    return max(1, min(32, -(-total // (jobs * 4))))


def shard(items: Sequence[_T], chunk_size: int) -> list[tuple[int, tuple[_T, ...]]]:
    """Split *items* into contiguous ``(start_index, chunk)`` shards."""
    if chunk_size < 1:
        raise ParallelError("chunk_size must be at least 1")
    return [
        (start, tuple(items[start : start + chunk_size]))
        for start in range(0, len(items), chunk_size)
    ]


# --------------------------------------------------------------------- #
# The generic pool harness
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _WorkerFailure:
    """A worker-side failure shipped back as a value (never as a dead worker)."""

    kind: str  # "interrupt" | "error"
    message: str
    details: str


def _guarded_call(fn: Callable[[Any], Any], payload: Any) -> Any:
    """Run one task, converting every failure — even ``KeyboardInterrupt`` —
    into a :class:`_WorkerFailure` value.

    ``multiprocessing.Pool`` workers only survive ``Exception``; a
    ``BaseException`` escaping a task kills the worker and the lost task
    hangs ``imap`` forever.  Catching everything here is what makes
    shutdown clean and testable.
    """
    try:
        return fn(payload)
    except Exception as error:  # noqa: BLE001 - shipped to the parent
        return _WorkerFailure("error", repr(error), traceback.format_exc())
    except BaseException as error:  # noqa: BLE001 - incl. KeyboardInterrupt
        kind = "interrupt" if isinstance(error, KeyboardInterrupt) else "error"
        return _WorkerFailure(kind, repr(error), traceback.format_exc())


def _reraise(failure: _WorkerFailure) -> None:
    if failure.kind == "interrupt":
        raise KeyboardInterrupt(failure.message)
    raise ParallelError(f"worker failed: {failure.message}\n{failure.details}")


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (where available) inherits registered plugin backends/strategies
    # and imported modules; spawn works too but re-imports from scratch.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def pool_imap(
    fn: Callable[[Any], Any],
    payloads: Iterable[Any],
    jobs: int,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    ordered: bool = True,
) -> Iterator[Any]:
    """Map *fn* over *payloads* on a worker pool, with clean shutdown.

    *fn* must be a picklable module-level callable.  Results stream back in
    payload order (``ordered=True``) or completion order; either way tasks
    are pulled from a shared queue, so scheduling is work-stealing.  Worker
    failures re-raise in the parent (``KeyboardInterrupt`` as itself,
    everything else as :class:`ParallelError`); the pool is terminated and
    joined on any exit path, including the caller closing the iterator
    early.
    """
    if jobs < 1:
        raise ParallelError("jobs must be at least 1")
    payloads = list(payloads)
    if not payloads:
        return
    context = _pool_context()
    pool = context.Pool(processes=jobs, initializer=initializer, initargs=initargs)
    clean_exit = False
    try:
        guarded = functools.partial(_guarded_call, fn)
        iterator = pool.imap(guarded, payloads) if ordered else pool.imap_unordered(guarded, payloads)
        for result in iterator:
            if isinstance(result, _WorkerFailure):
                _reraise(result)
            yield result
        pool.close()
        clean_exit = True
    finally:
        if not clean_exit:
            pool.terminate()
        pool.join()


# --------------------------------------------------------------------- #
# The Session.batch() worker path
# --------------------------------------------------------------------- #
#: The rehydrated per-process session of the current batch (pool initializer),
#: or the recorded rehydration failure.  An initializer must never raise: a
#: worker dying during bootstrap makes the pool respawn it in an unbounded
#: loop (the lost task is never executed, so ``imap`` blocks forever) —
#: reachable e.g. under ``spawn`` when a plugin backend is not registered in
#: the re-imported worker.  The first task re-raises the recorded failure
#: instead, which ships back to the parent as a :class:`ParallelError`.
_WORKER_SESSION: Session | None = None
_WORKER_INIT_ERROR: str | None = None


def _batch_worker_init(spec: SessionSpec) -> None:
    global _WORKER_SESSION, _WORKER_INIT_ERROR
    try:
        _WORKER_SESSION = spec.build()  # lint: disable=fork-shared-state -- deliberate per-worker state installed by the pool initializer inside the worker; the parent never reads it
    except BaseException as error:  # noqa: BLE001 - see _WORKER_SESSION note
        _WORKER_INIT_ERROR = repr(error)  # lint: disable=fork-shared-state -- deliberate per-worker error capture inside the worker; surfaced via task results, not the parent module


@dataclass(frozen=True)
class _ChunkResult:
    """One shard's outcomes plus what the shard did to the worker's cache."""

    start: int
    outcomes: tuple[Outcome, ...]
    cache_delta: Mapping[str, tuple[int, int, int]]
    elapsed: float


def _run_request_chunk(payload: tuple[int, tuple[Any, ...], bool]) -> _ChunkResult:
    start, requests, capture_errors = payload
    session = _WORKER_SESSION
    if session is None:
        raise ParallelError(
            "batch worker failed to rehydrate its session: "
            f"{_WORKER_INIT_ERROR or 'no session spec received'}"
        )
    before = session.cache.snapshot()
    started = time.perf_counter()
    if capture_errors:
        outcomes = tuple(session.submit_captured(request) for request in requests)
    else:
        outcomes = tuple(session.submit(request) for request in requests)
    return _ChunkResult(
        start=start,
        outcomes=outcomes,
        cache_delta=snapshot_delta(session.cache.snapshot(), before),
        elapsed=time.perf_counter() - started,
    )


def parallel_batch(
    session: Session,
    requests: Sequence[Any],
    jobs: int,
    chunk_size: int | None = None,
    capture_errors: bool = False,
) -> Iterator[Outcome]:
    """Shard *requests* across *jobs* worker sessions; stream ordered outcomes.

    This is the engine behind ``Session.batch(requests, jobs=N)``.  Every
    worker rehydrates ``session.spec()`` (same backend, limits and
    memoisation — fresh cache), chunks are scheduled work-stealing style,
    and outcomes are yielded strictly in request order with each outcome's
    ``request`` field rebound to the caller's own object.  Worker cache
    deltas are folded into the parent session's cache statistics as the
    chunks land, so ``session.cache`` reflects the fleet's work.

    With ``capture_errors=False`` a failing request aborts the stream like
    the serial path, but the worker-side exception arrives wrapped in
    :class:`ParallelError` (the original object may not be picklable).
    """
    requests = list(requests)
    if jobs <= 1 or len(requests) <= 1:
        # Not worth a pool; keep semantics by delegating to the serial path.
        yield from session.batch(requests, capture_errors=capture_errors)
        return
    batch_id = next(_BATCH_COUNTER)
    size = chunk_size if chunk_size is not None else default_chunk_size(len(requests), jobs)
    payloads = [
        (start, chunk, capture_errors) for start, chunk in shard(requests, size)
    ]
    results = pool_imap(
        _run_request_chunk,
        payloads,
        jobs=min(jobs, len(payloads)),
        initializer=_batch_worker_init,
        initargs=(session.spec(),),
        ordered=True,
    )
    try:
        for chunk in results:
            # Token per chunk start: a delta replayed for the same shard
            # (e.g. a chunk retried after a worker failure) folds in once.
            session.cache.absorb_delta(chunk.cache_delta, token=("batch", batch_id, chunk.start))
            for offset, outcome in enumerate(chunk.outcomes):
                original = requests[chunk.start + offset]
                yield dataclasses.replace(outcome, request=original)
    finally:
        results.close()


def merged_cache_stats(outcomes: Iterable[Outcome]) -> dict[str, tuple[int, int, int]]:
    """Fold the per-outcome cache deltas of a batch into one fleet-wide snapshot.

    Serial and parallel streams merge to the same totals whenever the
    requests do not share cacheable work across shard boundaries (distinct
    pairs); on repetitive streams the serial path shows more hits — the
    memoisation-vs-parallelism trade-off the module docstring describes.
    """
    return merge_snapshots(outcome.cache for outcome in outcomes)
